#!/usr/bin/env python3
"""A working file service on real UDP sockets.

The paper's V-kernel workflow — small request message, then the file
body as one blast — on an actual transport: a server thread holding an
in-memory store, a client reading and writing through lossy sockets.

Run:  python examples/udp_file_service.py
"""

import threading
import time

from repro.simnet import BernoulliErrors
from repro.udpnet import UdpFileClient, UdpFileServer


def main() -> None:
    files = {
        "README": b"Files move as blasts; requests as tiny datagrams.\n",
        "big.dat": bytes(i % 251 for i in range(128 * 1024)),
    }
    server = UdpFileServer(files=files)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.address
    print(f"file server on {host}:{port} with {len(files)} files\n")

    # A clean client first.
    client = UdpFileClient(server.address)
    print("listing:", client.list_files())
    print("stat big.dat:", client.stat("big.dat"), "bytes")
    start = time.monotonic()
    data = client.read_file("big.dat")
    elapsed = time.monotonic() - start
    print(f"read big.dat: {len(data)} bytes in {elapsed * 1e3:.1f} ms "
          f"(intact={data == files['big.dat']})")

    payload = b"uploaded through the blast protocol\n" * 800
    start = time.monotonic()
    client.write_file("upload.dat", payload)
    print(f"write upload.dat: {len(payload)} bytes in "
          f"{(time.monotonic() - start) * 1e3:.1f} ms")
    client.close()

    # Now with 5% datagram loss injected at the client: the lossy upload
    # pushes ~130 datagrams through the dropper and repairs every loss.
    lossy = UdpFileClient(server.address,
                          error_model=BernoulliErrors(0.05, seed=1))
    start = time.monotonic()
    lossy.write_file("lossy.dat", files["big.dat"])
    elapsed = time.monotonic() - start
    data = lossy.read_file("lossy.dat")
    print(f"\nwith 5% loss injected: upload+readback intact="
          f"{data == files['big.dat']} "
          f"(upload {elapsed * 1e3:.1f} ms, "
          f"{lossy.sock.datagrams_dropped} datagrams dropped on purpose)")
    lossy.close()

    server.stop()
    thread.join(timeout=5)
    server.close()
    print("\nthe control plane retries lost requests; the data plane repairs "
          "lost frames\nwith go-back-n — the same machinery the simulator runs.")


if __name__ == "__main__":
    main()
