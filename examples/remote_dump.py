#!/usr/bin/env python3
"""Remote file-system dump: multiple blasts for very large transfers.

The paper (§3.1.3): "as the size of the data transfer increases, errors
are more likely and retransmission becomes more costly.  For such very
large sizes, we suggest the use of multiple blasts."  This example dumps
4 MB across the simulated LAN under interface-grade loss, sweeping the
per-blast chunk size, and shows the trade-off: tiny chunks waste ack
exchanges, one giant blast wastes retransmission — with the crude
full-retransmission strategy the sweet spot is in between, while
go-back-n barely cares.

Run:  python examples/remote_dump.py
"""

from repro import BernoulliErrors, NetworkParams, run_transfer

DUMP = bytes(4 * 1024 * 1024)  # 4 MB = 4096 packets
PN = 1e-3                       # a full-speed-interfaces kind of day


def sweep(strategy: str) -> None:
    print(f"  strategy = {strategy}")
    for blast_packets in (16, 64, 256, 1024, 4096):
        result = run_transfer(
            "multiblast",
            DUMP,
            params=NetworkParams.standalone(),
            blast_packets=blast_packets,
            strategy=strategy,
            error_model=BernoulliErrors(PN, seed=blast_packets),
        )
        assert result.data_intact
        n_blasts = (4096 + blast_packets - 1) // blast_packets
        print(f"    {blast_packets:5d} packets/blast ({n_blasts:4d} blasts): "
              f"{result.elapsed_s:6.2f} s, "
              f"{result.stats.data_frames_sent:5d} data frames, "
              f"goodput {result.goodput_fraction:.2f}")


def main() -> None:
    print(f"Dumping {len(DUMP) // (1024 * 1024)} MB over the simulated LAN, "
          f"p_n = {PN}\n")
    sweep("full_nak")
    print()
    sweep("gobackn")
    from repro.analysis import optimal_blast_size

    b_opt, t_opt = optimal_blast_size(4096, PN, max_blast=1024)
    print(f"\nClosed-form optimum for full retransmission at p_n={PN}: "
          f"{b_opt} packets/blast (E[T] = {t_opt:.2f} s).")
    print("With full retransmission, chunking is what keeps waste bounded "
          "(the paper's\nsuggestion); with go-back-n the protocol itself "
          "already limits the damage.")


if __name__ == "__main__":
    main()
