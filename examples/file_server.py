#!/usr/bin/env python3
"""A V-kernel file server serving a realistic access trace.

The paper's motivating scenario (§2): a diskless workstation reads files
from a server over the LAN.  The client allocates its buffer first, asks
the server by IPC, and the server MoveTo-s the file contents straight
into the client's address space with the blast protocol.

This example replays a Zipf-skewed, read-mostly synthetic trace and
reports per-operation latency and achieved goodput, with and without
network errors.

Run:  python examples/file_server.py
"""

import random

from repro.sim import Environment
from repro.simnet import BernoulliErrors, NetworkParams, make_lan
from repro.vkernel import FileClient, FileServer, VKernel
from repro.workloads import make_trace


def replay(error_p: float, n_requests: int = 40, seed: int = 2026):
    env = Environment()
    server_host, client_host, medium = make_lan(
        env,
        NetworkParams.vkernel(),
        error_model=BernoulliErrors(error_p, seed=seed) if error_p else None,
        names=("server", "client"),
    )
    server_kernel = VKernel(env, server_host, kernel_id=1)
    client_kernel = VKernel(env, client_host, kernel_id=2)

    trace = make_trace(n_files=12, n_requests=n_requests, seed=seed)
    rng = random.Random(seed)
    files = {
        name: bytes(rng.randrange(256) for _ in range(min(size, 96 * 1024)))
        for name, size in trace.files.items()
    }
    server = FileServer(server_kernel, files=files)
    client = FileClient(client_kernel, server.ref)

    stats = {"reads": 0, "writes": 0, "bytes": 0, "latencies": []}

    def workload():
        for request in trace.requests:
            start = env.now
            if request.op == "read":
                data = yield from client.read_file(
                    request.filename, len(files[request.filename])
                )
                assert data == server.files[request.filename]
                stats["reads"] += 1
            else:
                payload = files[request.filename]
                yield from client.write_file(request.filename, payload)
                stats["writes"] += 1
            stats["bytes"] += len(files[request.filename])
            stats["latencies"].append(env.now - start)

    env.run(env.process(workload()))
    return env.now, stats, medium


def main() -> None:
    print("V-kernel file server replaying a read-mostly trace "
          "(12 files, Zipf popularity)\n")
    for error_p, label in ((0.0, "error-free network"),
                           (1e-4, "interface-grade errors (1e-4)"),
                           (1e-2, "pathological errors (1e-2)")):
        elapsed, stats, medium = replay(error_p)
        latencies = stats["latencies"]
        mean_ms = sum(latencies) / len(latencies) * 1e3
        worst_ms = max(latencies) * 1e3
        goodput = stats["bytes"] * 8 / elapsed / 1e6
        print(f"  {label}:")
        print(f"    {stats['reads']} reads + {stats['writes']} writes, "
              f"{stats['bytes'] / 1024:.0f} KB moved in {elapsed:.2f} s")
        print(f"    per-op latency mean {mean_ms:.1f} ms, worst {worst_ms:.1f} ms; "
              f"goodput {goodput:.2f} Mb/s")
        print(f"    frames lost on the wire: {medium.frames_dropped}\n")
    print("Every byte arrived intact in all three runs — the go-back-n blast\n"
          "retransmission repairs interface-grade loss with barely visible cost.")


if __name__ == "__main__":
    main()
