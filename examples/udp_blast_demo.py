#!/usr/bin/env python3
"""The protocols on REAL sockets: blast vs stop-and-wait over UDP loopback.

Same frame format, same receiver tracker, same retransmission strategies
as the simulator — but actual datagrams through the kernel's UDP stack,
with loss injected at the sender.  Absolute numbers are Python-bound;
the *shape* (blast needs one reply, stop-and-wait needs one per packet,
selective retransmission wastes the fewest frames) is the point.

Run:  python examples/udp_blast_demo.py
"""

import threading

from repro.simnet import BernoulliErrors
from repro.udpnet import (
    BlastReceiver,
    BlastSender,
    PerPacketAckReceiver,
    SawSender,
)

DATA = bytes(i % 251 for i in range(64 * 1024))  # 64 KB of patterned bytes


def run_pair(receiver, serve_kwargs, send_fn):
    box = {}

    def serve():
        box["received"] = receiver.serve_one(**serve_kwargs)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    box["sent"] = send_fn()
    thread.join(timeout=60)
    return box["sent"], box["received"]


def show(label, sent, received):
    intact = "intact" if received.data == DATA else "CORRUPT"
    print(f"  {label:<28s} {sent.elapsed_s * 1e3:7.1f} ms  "
          f"{sent.data_frames_sent:4d} data frames  "
          f"{received.reply_frames_sent:3d} replies  "
          f"{sent.retransmissions:3d} retx  [{intact}]")


def main() -> None:
    print(f"Transferring {len(DATA) // 1024} KB over UDP loopback "
          f"({len(DATA) // 1024} packets of 1 KB)\n")

    print("Lossless:")
    with PerPacketAckReceiver() as rx, SawSender() as tx:
        show("stop-and-wait", *run_pair(rx, {}, lambda: tx.send(DATA, rx.address)))
    with BlastReceiver() as rx, BlastSender() as tx:
        show("blast (gobackn)",
             *run_pair(rx, {}, lambda: tx.send(DATA, rx.address, strategy="gobackn")))

    print("\nWith 5% injected datagram loss:")
    for strategy in ("full_nak", "gobackn", "selective"):
        with BlastReceiver() as rx, BlastSender(
            error_model=BernoulliErrors(0.05, seed=hash(strategy) % 2**31)
        ) as tx:
            show(f"blast ({strategy})",
                 *run_pair(rx, {}, lambda: tx.send(DATA, rx.address,
                                                   strategy=strategy)))
    with PerPacketAckReceiver() as rx, SawSender(
        error_model=BernoulliErrors(0.05, seed=99)
    ) as tx:
        show("stop-and-wait", *run_pair(rx, {}, lambda: tx.send(DATA, rx.address)))

    print("\nNote how selective retransmission resends almost exactly the "
          "lost frames,\ngo-back-n a little more, and full retransmission "
          "entire 64-packet rounds.")


if __name__ == "__main__":
    main()
