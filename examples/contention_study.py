#!/usr/bin/env python3
"""Network-load study: how far does the paper's low-load caveat reach?

The paper measured on an idle Ethernet and scoped its conclusions to
"low load conditions".  This example loads the simulated wire with
Poisson cross traffic at 0-80 % and replays the protocol comparison,
showing that the blast advantage is remarkably load-tolerant — because
the bottleneck is the processors, not the wire.

Run:  python examples/contention_study.py
"""

from repro.core import PROTOCOLS
from repro.sim import Environment
from repro.simnet import BackgroundLoad, NetworkParams, make_lan

DATA = bytes(64 * 1024)


def measure(protocol: str, load: float, seed: int = 1) -> float:
    env = Environment()
    sender, receiver, medium = make_lan(env, NetworkParams.standalone())
    BackgroundLoad(env, medium, load, seed=seed)
    transfer = PROTOCOLS[protocol](env, sender, receiver, DATA)
    env.run(transfer.launch())
    result = transfer.result()
    assert result.data_intact
    return result.elapsed_s


def main() -> None:
    loads = (0.0, 0.2, 0.4, 0.6, 0.8)
    print("64 KB transfer vs background network load (ms)\n")
    print(f"  {'load':>6s}  {'SAW':>8s}  {'SW':>8s}  {'blast':>8s}  {'SAW/blast':>9s}")
    for load in loads:
        times = {p: measure(p, load) for p in
                 ("stop_and_wait", "sliding_window", "blast")}
        print(f"  {load:6.0%}  {times['stop_and_wait'] * 1e3:8.2f}"
              f"  {times['sliding_window'] * 1e3:8.2f}"
              f"  {times['blast'] * 1e3:8.2f}"
              f"  {times['stop_and_wait'] / times['blast']:9.2f}")
    print("\nEven at 80% cross traffic the ranking and the ~1.8x advantage "
          "hold:\nthe transfer is processor-bound (wire only ~38% utilised "
          "when idle),\nso wire contention mostly hides inside the copy time.")


if __name__ == "__main__":
    main()
