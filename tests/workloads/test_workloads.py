"""Tests for the workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads import (
    PAPER_TABLE_SIZES,
    dump_chunks,
    file_size_mix,
    make_trace,
    page_cluster_sizes,
    paper_table_sizes,
)


class TestSizes:
    def test_paper_table_sizes(self):
        assert paper_table_sizes() == [1024, 4096, 16384, 65536]
        assert PAPER_TABLE_SIZES == (1024, 4096, 16384, 65536)

    def test_page_cluster_sizes_are_power_of_two_clusters(self):
        sizes = page_cluster_sizes(base_page=4096, max_cluster=16, count=500, seed=1)
        assert len(sizes) == 500
        allowed = {4096 * c for c in (1, 2, 4, 8, 16)}
        assert set(sizes) <= allowed

    def test_page_cluster_small_sizes_more_frequent(self):
        sizes = page_cluster_sizes(count=2000, seed=2)
        assert sizes.count(4096) > sizes.count(65536)

    def test_page_cluster_deterministic(self):
        assert page_cluster_sizes(seed=3) == page_cluster_sizes(seed=3)
        assert page_cluster_sizes(seed=3) != page_cluster_sizes(seed=4)

    def test_page_cluster_validation(self):
        with pytest.raises(ValueError):
            page_cluster_sizes(base_page=0)

    def test_file_size_mix_bounds(self):
        sizes = file_size_mix(count=1000, max_bytes=1 << 20, seed=5)
        assert all(1 <= s <= 1 << 20 for s in sizes)

    def test_file_size_mix_long_tailed(self):
        sizes = sorted(file_size_mix(count=2000, seed=6))
        median = sizes[len(sizes) // 2]
        assert max(sizes) > 10 * median  # heavy tail

    def test_file_size_mix_validation(self):
        with pytest.raises(ValueError):
            file_size_mix(count=-1)
        with pytest.raises(ValueError):
            file_size_mix(median_bytes=0)

    def test_dump_chunks_exact_cover(self):
        chunks = list(dump_chunks(1_000_000, 64 * 1024))
        assert sum(chunks) == 1_000_000
        assert all(c == 64 * 1024 for c in chunks[:-1])
        assert 0 < chunks[-1] <= 64 * 1024

    def test_dump_chunks_empty(self):
        assert list(dump_chunks(0)) == []

    def test_dump_chunks_validation(self):
        with pytest.raises(ValueError):
            list(dump_chunks(-1))
        with pytest.raises(ValueError):
            list(dump_chunks(10, 0))

    @given(total=st.integers(0, 10**7), chunk=st.integers(512, 10**6))
    @settings(max_examples=80, deadline=None)
    def test_dump_chunks_property(self, total, chunk):
        chunks = list(dump_chunks(total, chunk))
        assert sum(chunks) == total
        assert all(0 < c <= chunk for c in chunks)


class TestTraces:
    def test_trace_shape(self):
        trace = make_trace(n_files=10, n_requests=200, seed=7)
        assert len(trace.requests) == 200
        assert len(trace.files) == 10
        assert all(r.filename in trace.files for r in trace.requests)
        assert all(r.size == trace.files[r.filename] for r in trace.requests)

    def test_read_fraction_respected(self):
        trace = make_trace(n_requests=2000, read_fraction=0.8, seed=8)
        assert trace.read_fraction() == pytest.approx(0.8, abs=0.05)

    def test_popularity_skew(self):
        trace = make_trace(n_files=20, n_requests=5000, seed=9)
        counts = {}
        for request in trace.requests:
            counts[request.filename] = counts.get(request.filename, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # Hot file gets far more traffic than a cold one (Zipf).
        assert ranked[0] > 5 * ranked[-1]

    def test_deterministic(self):
        assert make_trace(seed=10) == make_trace(seed=10)

    def test_total_bytes(self):
        trace = make_trace(n_requests=50, seed=11)
        assert trace.total_bytes == sum(r.size for r in trace.requests)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_trace(n_files=0)
        with pytest.raises(ValueError):
            make_trace(read_fraction=1.5)

    def test_request_validation(self):
        from repro.workloads import AccessRequest

        with pytest.raises(ValueError):
            AccessRequest(op="delete", filename="f", size=1)
        with pytest.raises(ValueError):
            AccessRequest(op="read", filename="f", size=-1)

    def test_empty_trace_read_fraction(self):
        trace = make_trace(n_requests=0, seed=12)
        assert trace.read_fraction() == 0.0
