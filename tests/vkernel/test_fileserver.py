"""Tests for the V-style file server and client."""

import pytest

from repro.sim import Environment
from repro.simnet import BernoulliErrors, NetworkParams, make_lan
from repro.vkernel import FileClient, FileServer, SimDisk, VKernel


def build(error_model=None, files=None, disk=None, cache=True):
    env = Environment()
    host_a, host_b, _ = make_lan(
        env, NetworkParams.vkernel(), error_model=error_model,
        names=("server", "client"),
    )
    server_kernel = VKernel(env, host_a, kernel_id=1)
    client_kernel = VKernel(env, host_b, kernel_id=2)
    server = FileServer(server_kernel, files=files, disk=disk, cache=cache)
    client = FileClient(client_kernel, server.ref)
    return env, server, client


class TestSimDisk:
    def test_read_time_model(self):
        disk = SimDisk(seek_s=0.02, rate_bytes_per_s=1e6)
        assert disk.read_time(0) == pytest.approx(0.02)
        assert disk.read_time(1_000_000) == pytest.approx(1.02)
        with pytest.raises(ValueError):
            disk.read_time(-1)

    def test_large_reads_amortise_seek(self):
        """The paper's motivation: per-request fixed costs favour large
        pages — bytes/second improves with request size."""
        disk = SimDisk()
        small = 1024 / disk.read_time(1024)
        large = 65536 / disk.read_time(65536)
        assert large > 5 * small


class TestFileReadWrite:
    def test_read_round_trip(self):
        content = bytes(range(256)) * 200  # 51200 B
        env, server, client = build(files={"data.bin": content})

        def body():
            size = yield from client.stat("data.bin")
            data = yield from client.read_file("data.bin", size)
            return data

        proc = env.process(body())
        assert env.run(proc) == content

    def test_write_then_read(self):
        env, server, client = build()
        payload = b"written by the client" * 512

        def body():
            n = yield from client.write_file("new.bin", payload)
            assert n == len(payload)
            data = yield from client.read_file("new.bin", len(payload))
            return data

        proc = env.process(body())
        assert env.run(proc) == payload
        assert server.files["new.bin"] == payload

    def test_missing_file_errors(self):
        env, _, client = build()

        def body():
            try:
                yield from client.read_file("ghost", 10)
            except OSError as exc:
                return str(exc)

        proc = env.process(body())
        assert "no such file" in env.run(proc)

    def test_stat_missing_file(self):
        env, _, client = build()

        def body():
            with pytest.raises(OSError):
                yield from client.stat("ghost")
            return "checked"

        proc = env.process(body())
        assert env.run(proc) == "checked"

    def test_short_client_buffer_reported_not_crashed(self):
        env, _, client = build(files={"big": bytes(4096)})

        def body():
            try:
                yield from client.read_file("big", 10)  # buffer too small
            except OSError as exc:
                return str(exc)

        proc = env.process(body())
        assert "too small" in env.run(proc)

    def test_read_through_lossy_network(self):
        content = bytes(range(256)) * 64
        env, _, client = build(
            files={"f": content}, error_model=BernoulliErrors(0.05, seed=17)
        )

        def body():
            data = yield from client.read_file("f", len(content))
            return data

        proc = env.process(body())
        assert env.run(proc) == content

    def test_cache_skips_disk_on_second_read(self):
        content = bytes(16 * 1024)
        slow_disk = SimDisk(seek_s=0.5, rate_bytes_per_s=1e6)
        env, _, client = build(files={"f": content}, disk=slow_disk)

        def body():
            t0 = env.now
            yield from client.read_file("f", len(content))
            first = env.now - t0
            t1 = env.now
            yield from client.read_file("f", len(content))
            second = env.now - t1
            return first, second

        proc = env.process(body())
        first, second = env.run(proc)
        assert first > 0.5          # paid the seek
        assert second < first - 0.4  # served from cache

    def test_server_counts_requests(self):
        env, server, client = build(files={"f": b"x"})

        def body():
            yield from client.stat("f")
            yield from client.read_file("f", 1)

        env.run(env.process(body()))
        assert server.requests_served == 2
