"""Tests for the V-kernel substrate: IPC, MoveTo/MoveFrom, preconditions."""

import pytest

from repro.core import run_transfer
from repro.sim import Environment
from repro.simnet import BernoulliErrors, NetworkParams, make_lan
from repro.vkernel import IpcError, MoveError, ProcessRef, VKernel


@pytest.fixture()
def lan():
    env = Environment()
    host_a, host_b, medium = make_lan(
        env, NetworkParams.vkernel(), names=("alpha", "beta")
    )
    ka = VKernel(env, host_a, kernel_id=1)
    kb = VKernel(env, host_b, kernel_id=2)
    return env, ka, kb


class TestProcesses:
    def test_create_and_lookup(self, lan):
        _, ka, _ = lan
        proc = ka.create_process("worker")
        assert ka.lookup(proc.ref) is proc
        assert proc.ref == ProcessRef(1, proc.pid)

    def test_lookup_remote_ref_rejected(self, lan):
        _, ka, kb = lan
        remote = kb.create_process("remote")
        with pytest.raises(IpcError):
            ka.lookup(remote.ref)

    def test_duplicate_kernel_id_rejected(self, lan):
        env, ka, _ = lan
        with pytest.raises(ValueError):
            VKernel(env, ka.host, kernel_id=1)

    def test_buffers(self, lan):
        _, ka, _ = lan
        proc = ka.create_process("p")
        proc.allocate("buf", 10)
        assert proc.read_buffer("buf") == bytes(10)
        proc.write_buffer("buf", b"hello")
        assert proc.read_buffer("buf") == b"hello"
        with pytest.raises(MoveError):
            proc.read_buffer("nope")
        with pytest.raises(ValueError):
            proc.allocate("bad", -1)


class TestSendReceiveReply:
    def test_remote_rendezvous(self, lan):
        env, ka, kb = lan
        client = ka.create_process("client")
        server = kb.create_process("server")
        log = []

        def server_body():
            request = yield from kb.receive(server)
            log.append(request.payload)
            yield from kb.reply(server, request, "pong", 42)

        def client_body():
            reply = yield from ka.send(client, server.ref, "ping")
            return reply

        env.process(server_body())
        proc = env.process(client_body())
        assert env.run(proc) == ("pong", 42)
        assert log == [("ping",)]
        assert env.now > 0  # messages actually crossed the wire

    def test_local_rendezvous(self, lan):
        env, ka, _ = lan
        a = ka.create_process("a")
        b = ka.create_process("b")

        def server_body():
            request = yield from ka.receive(b)
            yield from ka.reply(b, request, request.payload[0] * 2)

        def client_body():
            reply = yield from ka.send(a, b.ref, 21)
            return reply[0]

        env.process(server_body())
        proc = env.process(client_body())
        assert env.run(proc) == 42

    def test_send_retransmits_through_loss(self):
        env = Environment()
        host_a, host_b, _ = make_lan(
            env, NetworkParams.vkernel(),
            error_model=BernoulliErrors(0.3, seed=99),
        )
        ka = VKernel(env, host_a, kernel_id=1, send_timeout_s=0.05)
        kb = VKernel(env, host_b, kernel_id=2, send_timeout_s=0.05)
        client = ka.create_process("client")
        server = kb.create_process("server")
        served = []

        def server_body():
            while True:
                request = yield from kb.receive(server)
                served.append(request.msg_id)
                yield from kb.reply(server, request, "ok")

        def client_body():
            for _ in range(5):
                reply = yield from ka.send(client, server.ref, "req")
                assert reply == ("ok",)
            return len(served)

        env.process(server_body())
        proc = env.process(client_body())
        # Despite 30% frame loss every request completes exactly once.
        assert env.run(proc) == 5
        assert sorted(served) == sorted(set(served))

    def test_reply_to_non_send_rejected(self, lan):
        env, ka, kb = lan
        proc = ka.create_process("p")
        from repro.vkernel import MessageFrame, MessageKind

        bogus = MessageFrame(MessageKind.REPLY, proc.ref, proc.ref, 1)
        with pytest.raises(IpcError):
            # reply() validates before yielding anything.
            next(ka.reply(proc, bogus, "x"))


class TestMoveToFrom:
    def test_remote_move_to(self, lan):
        env, ka, kb = lan
        src = ka.create_process("src")
        dst = kb.create_process("dst")
        dst.allocate("inbox", 8 * 1024)
        payload = bytes(range(256)) * 32

        def body():
            result = yield from ka.move_to(src, dst.ref, "inbox", payload)
            return result

        proc = env.process(body())
        result = env.run(proc)
        assert dst.read_buffer("inbox") == payload
        assert result.protocol == "blast"
        assert result.data_intact

    def test_move_to_matches_plain_blast_timing(self, lan):
        """MoveTo is the blast protocol: same elapsed time as Table 3."""
        env, ka, kb = lan
        src = ka.create_process("src")
        dst = kb.create_process("dst")
        data = bytes(64 * 1024)
        dst.allocate("inbox", len(data))

        def body():
            start = env.now
            yield from ka.move_to(src, dst.ref, "inbox", data)
            return env.now - start

        proc = env.process(body())
        elapsed = env.run(proc)
        reference = run_transfer("blast", data, params=NetworkParams.vkernel())
        assert elapsed == pytest.approx(reference.elapsed_s, rel=1e-9)
        assert elapsed == pytest.approx(173e-3, abs=1e-3)  # paper's T0(64)

    def test_remote_move_from(self, lan):
        env, ka, kb = lan
        reader = ka.create_process("reader")
        holder = kb.create_process("holder")
        payload = b"remote contents" * 100
        holder.write_buffer("outbox", payload)

        def body():
            data = yield from ka.move_from(reader, holder.ref, "outbox")
            return data

        proc = env.process(body())
        assert env.run(proc) == payload

    def test_local_move_to(self, lan):
        env, ka, _ = lan
        a = ka.create_process("a")
        b = ka.create_process("b")
        b.allocate("buf", 100)

        def body():
            result = yield from ka.move_to(a, b.ref, "buf", b"x" * 100)
            return result

        proc = env.process(body())
        assert env.run(proc) is None  # local move: no blast result
        assert b.read_buffer("buf") == b"x" * 100
        assert env.now > 0  # but the copy cost time

    def test_move_to_missing_buffer_rejected(self, lan):
        env, ka, kb = lan
        src = ka.create_process("src")
        dst = kb.create_process("dst")

        def body():
            yield from ka.move_to(src, dst.ref, "nowhere", b"data")

        proc = env.process(body())
        with pytest.raises(MoveError, match="must.*allocate"):
            env.run(proc)

    def test_move_to_short_buffer_rejected(self, lan):
        env, ka, kb = lan
        src = ka.create_process("src")
        dst = kb.create_process("dst")
        dst.allocate("small", 10)

        def body():
            yield from ka.move_to(src, dst.ref, "small", b"x" * 11)

        proc = env.process(body())
        with pytest.raises(MoveError, match="too small"):
            env.run(proc)

    def test_move_to_offset(self, lan):
        env, ka, kb = lan
        src = ka.create_process("src")
        dst = kb.create_process("dst")
        dst.allocate("buf", 8)

        def body():
            yield from ka.move_to(src, dst.ref, "buf", b"ab", offset=3)

        env.run(env.process(body()))
        assert dst.read_buffer("buf") == b"\0\0\0ab\0\0\0"

    def test_move_to_survives_loss(self):
        env = Environment()
        host_a, host_b, _ = make_lan(
            env, NetworkParams.vkernel(),
            error_model=BernoulliErrors(0.05, seed=5),
        )
        ka = VKernel(env, host_a, kernel_id=1)
        kb = VKernel(env, host_b, kernel_id=2)
        src = ka.create_process("src")
        dst = kb.create_process("dst")
        payload = bytes(range(256)) * 128  # 32 KB
        dst.allocate("inbox", len(payload))

        def body():
            yield from ka.move_to(src, dst.ref, "inbox", payload, strategy="selective")

        env.run(env.process(body()))
        assert dst.read_buffer("inbox") == payload
