"""Explicit tests for the kernel IPC's exactly-once visible semantics."""

import pytest

from repro.sim import Environment
from repro.simnet import DeterministicDrops, NetworkParams, make_lan
from repro.vkernel import VKernel


def build(error_model=None, send_timeout_s=0.05):
    env = Environment()
    host_a, host_b, medium = make_lan(
        env, NetworkParams.vkernel(), error_model=error_model
    )
    ka = VKernel(env, host_a, kernel_id=1, send_timeout_s=send_timeout_s)
    kb = VKernel(env, host_b, kernel_id=2, send_timeout_s=send_timeout_s)
    return env, ka, kb, medium


class TestDuplicateSuppression:
    def test_lost_reply_replayed_not_reexecuted(self):
        """Drop the first reply: the client's retransmitted request must
        get the *cached* reply; the server body runs exactly once."""
        # Wire order: request (frame 0), reply (frame 1) -> drop the reply.
        env, ka, kb, _ = build(error_model=DeterministicDrops([1]))
        client = ka.create_process("client")
        server = kb.create_process("server")
        executions = []

        def server_body():
            while True:
                request = yield from kb.receive(server)
                executions.append(request.msg_id)
                yield from kb.reply(server, request, "result", len(executions))

        def client_body():
            reply = yield from ka.send(client, server.ref, "work")
            return reply

        env.process(server_body())
        proc = env.process(client_body())
        result = env.run(proc)
        assert result == ("result", 1)
        assert executions == [1]  # executed once despite the retry

    def test_duplicate_request_while_in_progress_dropped(self):
        """A duplicate arriving while the original is still being served
        is swallowed (no double delivery to the server mailbox)."""
        env, ka, kb, _ = build(send_timeout_s=0.02)
        client = ka.create_process("client")
        server = kb.create_process("server")
        deliveries = []

        def slow_server():
            request = yield from kb.receive(server)
            deliveries.append(request.msg_id)
            # Serve slowly: several client retries arrive meanwhile.
            yield env.timeout(0.2)
            yield from kb.reply(server, request, "done")

        def client_body():
            reply = yield from ka.send(client, server.ref, "slow")
            return reply

        env.process(slow_server())
        proc = env.process(client_body())
        assert env.run(proc) == ("done",)
        assert deliveries == [1]

    def test_distinct_requests_not_confused(self):
        env, ka, kb, _ = build()
        client = ka.create_process("client")
        server = kb.create_process("server")

        def echo_server():
            while True:
                request = yield from kb.receive(server)
                yield from kb.reply(server, request, *request.payload)

        def client_body():
            first = yield from ka.send(client, server.ref, "one")
            second = yield from ka.send(client, server.ref, "two")
            return first, second

        env.process(echo_server())
        proc = env.process(client_body())
        assert env.run(proc) == (("one",), ("two",))

    def test_message_to_unknown_process_retried_then_answered(self):
        """Messages to a not-yet-created process are dropped; once the
        process exists and receives, the retried request succeeds."""
        env, ka, kb, _ = build(send_timeout_s=0.02)
        client = ka.create_process("client")
        late_ref_holder = {}

        def late_server():
            yield env.timeout(0.1)  # process created late
            server = kb.create_process("late")
            late_ref_holder["ref"] = server.ref
            request = yield from kb.receive(server)
            yield from kb.reply(server, request, "finally")

        def client_body():
            # The pid the server *will* get (first process of kernel 2).
            from repro.vkernel import ProcessRef

            reply = yield from ka.send(client, ProcessRef(2, 1), "hello")
            return reply

        env.process(late_server())
        proc = env.process(client_body())
        assert env.run(proc) == ("finally",)
        assert env.now > 0.1


class TestMaxPacketFootnote:
    def test_1536_byte_packets_supported(self):
        """Paper footnote: 'The maximum packet size on the 10 megabit
        Ethernet is 1536 bytes' — the stack works at that packet size."""
        from repro.core import run_transfer

        params = NetworkParams.standalone(data_packet_bytes=1536)
        data = bytes(96 * 1024)
        result = run_transfer("blast", data, params=params)
        assert result.data_intact
        assert result.n_packets == 64  # 96 KB / 1.5 KB
        assert params.transmit_data_s == pytest.approx(1536 * 8 / 1e7)
