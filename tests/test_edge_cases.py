"""Edge-case coverage across packages: error paths, guards, accessors."""

import pytest

from repro.core import MultiBlastTransfer, StopAndWaitTransfer, run_many, run_transfer
from repro.sim import Environment
from repro.simnet import NetworkParams, TraceRecorder, make_lan


class TestTransferLifecycle:
    def test_double_launch_rejected(self):
        env = Environment()
        sender, receiver, _ = make_lan(env)
        transfer = StopAndWaitTransfer(env, sender, receiver, b"x")
        transfer.launch()
        with pytest.raises(RuntimeError, match="already launched"):
            transfer.launch()

    def test_result_before_completion_rejected(self):
        env = Environment()
        sender, receiver, _ = make_lan(env)
        transfer = StopAndWaitTransfer(env, sender, receiver, b"x")
        with pytest.raises(RuntimeError, match="not completed"):
            transfer.result()

    def test_run_equals_launch_plus_result(self):
        data = bytes(4 * 1024)
        via_run = run_transfer("blast", data)
        env = Environment()
        sender, receiver, _ = make_lan(env)
        from repro.core import BlastTransfer

        transfer = BlastTransfer(env, sender, receiver, data)
        env.run(transfer.launch())
        via_launch = transfer.result()
        assert via_launch.elapsed_s == pytest.approx(via_run.elapsed_s, rel=1e-12)

    def test_invalid_timeout_rejected(self):
        env = Environment()
        sender, receiver, _ = make_lan(env)
        with pytest.raises(ValueError, match="timeout_s"):
            StopAndWaitTransfer(env, sender, receiver, b"x", timeout_s=0)

    def test_multiblast_n_blasts(self):
        env = Environment()
        sender, receiver, _ = make_lan(env)
        transfer = MultiBlastTransfer(
            env, sender, receiver, bytes(10 * 1024), blast_packets=4
        )
        assert transfer.n_blasts == 3

    def test_saw_has_no_strategy(self):
        result = run_transfer("stop_and_wait", b"x")
        assert result.strategy is None


class TestHostAccessors:
    def test_cpu_busy_time_requires_trace(self):
        env = Environment()
        sender, _, _ = make_lan(env)
        with pytest.raises(RuntimeError, match="without a trace"):
            _ = sender.cpu_busy_time

    def test_cpu_busy_time_with_trace(self):
        env = Environment()
        trace = TraceRecorder()
        sender, receiver, _ = make_lan(env, trace=trace)
        from repro.core import BlastTransfer

        transfer = BlastTransfer(env, sender, receiver, bytes(2 * 1024))
        env.run(transfer.launch())
        params = sender.params
        expected = 2 * params.copy_data_s + params.copy_ack_s
        assert sender.cpu_busy_time == pytest.approx(expected, rel=1e-9)

    def test_send_without_peer_or_dst_rejected(self):
        from repro.simnet import Medium, Host
        from repro.core import DataFrame

        env = Environment()
        params = NetworkParams.standalone()
        medium = Medium(env, params)
        host = Host(env, "lonely", params, medium)

        def body():
            yield from host.send(DataFrame(1, 0, 1, b"x"))

        proc = env.process(body())
        with pytest.raises(RuntimeError, match="no destination"):
            env.run(proc)


class TestParamsGuards:
    def test_scaled_technology_validation(self):
        with pytest.raises(ValueError):
            NetworkParams.standalone().scaled_technology(cpu_factor=0)
        with pytest.raises(ValueError):
            NetworkParams.standalone().scaled_technology(wire_factor=-1)

    def test_with_copy_overhead_validation(self):
        with pytest.raises(ValueError):
            NetworkParams.standalone().with_copy_overhead(-1e-3)

    def test_copy_time_zero_bytes(self):
        params = NetworkParams.standalone()
        assert params.copy_model.copy_time(0) == params.copy_model.setup_s


class TestRunnerGuards:
    def test_run_many_validation(self):
        with pytest.raises(ValueError, match="n_runs"):
            run_many("blast", b"x", error_p=0.0, n_runs=0)

    def test_run_many_summary_fields(self):
        summary = run_many("blast", bytes(2048), error_p=0.0, n_runs=3, seed=1)
        assert summary.n_runs == 3
        assert summary.std_s == 0.0  # deterministic when error-free
        assert summary.min_s == summary.max_s == summary.mean_s
        assert summary.all_intact


class TestUdpOutcome:
    def test_zero_elapsed_throughput(self):
        from repro.udpnet import UdpTransferOutcome

        outcome = UdpTransferOutcome(ok=True, elapsed_s=0.0,
                                     payload_bytes=10, n_packets=1)
        assert outcome.throughput_bps == 0.0

    def test_endpoint_packet_bytes_validation(self):
        from repro.udpnet import BlastSender

        with pytest.raises(ValueError):
            BlastSender(packet_bytes=0)
