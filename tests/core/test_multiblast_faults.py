"""Multi-blast under fault-plan reordering (satellite of the service PR).

``MultiBlastTransfer`` folds per-blast payloads into a shared offset
table, so interleaved/duplicated arrival orders are exactly where an
off-by-one in the chunk bookkeeping would corrupt the reassembly.  These
tests drive it with the builtin reorder plans — both through the pure
``apply_to_sequence`` adapter (to pin the arrival orders themselves) and
through ``ScriptedErrors`` on the simulated wire.
"""

import pytest

from repro.core import run_transfer
from repro.faults.plan import FaultPlan, FaultRule, apply_to_sequence
from repro.faults.plans import builtin_plan
from repro.faults.scripted import ScriptedErrors
from repro.simnet import NetworkParams

PARAMS = NetworkParams.standalone()


def payload(n_packets):
    return bytes(range(256)) * 4 * n_packets  # n_packets KiB, patterned


class TestReorderArrivalOrders:
    def test_reorder_window_interleaves(self):
        plan = builtin_plan("reorder-window")
        order = apply_to_sequence(plan, list(range(10)))
        assert sorted(order) == list(range(10))  # nothing lost
        assert order != list(range(10))  # but genuinely out of order

    def test_dup_reorder_duplicates_and_interleaves(self):
        plan = builtin_plan("dup+reorder")
        order = apply_to_sequence(plan, list(range(10)))
        assert set(order) == set(range(10))
        assert len(order) > 10  # dup-burst added arrivals
        assert order != sorted(order)

    def test_arrival_order_deterministic(self):
        plan = builtin_plan("dup+reorder")
        items = list(range(12))
        assert apply_to_sequence(plan, items) == apply_to_sequence(plan, items)


class TestMultiBlastUnderReorder:
    @pytest.mark.parametrize("plan_name", ["reorder-window", "dup+reorder"])
    @pytest.mark.parametrize("strategy", ["gobackn", "selective"])
    def test_data_intact_under_builtin_plans(self, plan_name, strategy):
        data = payload(10)
        result = run_transfer(
            "multiblast", data, params=PARAMS, blast_packets=3,
            strategy=strategy,
            error_model=ScriptedErrors(builtin_plan(plan_name), seed=3),
        )
        assert result.data_intact
        assert result.data == data

    def test_deep_reorder_across_blast_boundary(self):
        # A depth-4 reorder at the last packet of blast 0 pushes it past
        # the first packets of blast 1 — the cross-chunk interleaving
        # the offset table must survive.
        plan = FaultPlan(
            name="cross-blast-reorder",
            rules=(
                FaultRule(action="reorder", kinds=("data",),
                          direction="send", indices=(2, 3), depth=4),
            ),
            description="straddle the blast boundary",
        )
        data = payload(8)
        result = run_transfer(
            "multiblast", data, params=PARAMS, blast_packets=4,
            strategy="selective", error_model=ScriptedErrors(plan, seed=0),
        )
        assert result.data_intact and result.data == data

    def test_reorder_run_is_deterministic(self):
        data = payload(6)

        def run():
            return run_transfer(
                "multiblast", data, params=PARAMS, blast_packets=2,
                strategy="selective",
                error_model=ScriptedErrors(builtin_plan("dup+reorder"),
                                           seed=9),
            )

        first, second = run(), run()
        assert first.elapsed_s == second.elapsed_s
        assert first.stats.data_frames_sent == second.stats.data_frames_sent
        assert first.stats.duplicates_received == second.stats.duplicates_received

    def test_duplicates_are_counted_not_reassembled(self):
        data = payload(6)
        result = run_transfer(
            "multiblast", data, params=PARAMS, blast_packets=3,
            strategy="selective",
            error_model=ScriptedErrors(builtin_plan("dup-burst"), seed=1),
        )
        assert result.data_intact and result.data == data
        assert result.stats.duplicates_received >= 1
