"""Behavioural tests of the protocol engines under scripted loss.

DeterministicDrops scripts exact loss patterns (frame indices in wire
order), letting each recovery path be exercised precisely: lost data
packets, lost acks, lost NAKs, lost last packets.
"""

import pytest

from repro.core import run_transfer
from repro.simnet import BernoulliErrors, DeterministicDrops, NetworkParams

DATA_8 = bytes(range(256)) * 32  # 8 KB -> 8 packets
PARAMS = NetworkParams.standalone()


class TestErrorFreeDelivery:
    @pytest.mark.parametrize("protocol", ["stop_and_wait", "sliding_window", "blast"])
    def test_data_delivered_intact(self, protocol):
        result = run_transfer(protocol, DATA_8, params=PARAMS)
        assert result.data_intact
        assert result.data == DATA_8
        assert result.stats.data_frames_sent == 8
        assert result.stats.retransmitted_data_frames == 0

    def test_empty_transfer(self):
        result = run_transfer("blast", b"", params=PARAMS)
        assert result.data_intact
        assert result.n_packets == 1

    def test_sub_packet_transfer(self):
        result = run_transfer("blast", b"tiny", params=PARAMS)
        assert result.data_intact
        assert result.n_packets == 1

    def test_reply_counts(self):
        saw = run_transfer("stop_and_wait", DATA_8, params=PARAMS)
        sw = run_transfer("sliding_window", DATA_8, params=PARAMS)
        blast = run_transfer("blast", DATA_8, params=PARAMS)
        assert saw.stats.reply_frames_sent == 8   # one ack per packet
        assert sw.stats.reply_frames_sent == 8
        assert blast.stats.reply_frames_sent == 1  # single ack for the blast


class TestStopAndWaitRecovery:
    def test_lost_data_packet_retransmitted(self):
        # Wire order: data0, ack0, data1, ack1, ... -> frame 4 is data2.
        result = run_transfer(
            "stop_and_wait", DATA_8, params=PARAMS,
            error_model=DeterministicDrops([4]),
        )
        assert result.data_intact
        assert result.stats.retransmitted_data_frames == 1
        assert result.stats.timeouts == 1

    def test_lost_ack_causes_duplicate(self):
        # Frame 1 is ack0: the receiver got data0 but the sender retries.
        result = run_transfer(
            "stop_and_wait", DATA_8, params=PARAMS,
            error_model=DeterministicDrops([1]),
        )
        assert result.data_intact
        assert result.stats.duplicates_received == 1
        assert result.stats.retransmitted_data_frames == 1


class TestBlastRecovery:
    def test_full_no_nak_lost_packet_resends_all(self):
        result = run_transfer(
            "blast", DATA_8, params=PARAMS, strategy="full_no_nak",
            error_model=DeterministicDrops([2]),
        )
        assert result.data_intact
        assert result.stats.rounds == 2
        assert result.stats.timeouts == 1           # silence, then timer
        assert result.stats.data_frames_sent == 16  # everything twice

    def test_full_nak_lost_packet_resends_all_without_timer(self):
        result = run_transfer(
            "blast", DATA_8, params=PARAMS, strategy="full_nak",
            error_model=DeterministicDrops([2]),
        )
        assert result.data_intact
        assert result.stats.rounds == 2
        assert result.stats.timeouts == 0           # NAK preempted the timer
        assert result.stats.data_frames_sent == 16

    def test_full_nak_lost_last_packet_falls_back_to_timer(self):
        result = run_transfer(
            "blast", DATA_8, params=PARAMS, strategy="full_nak",
            error_model=DeterministicDrops([7]),   # the last data frame
        )
        assert result.data_intact
        assert result.stats.timeouts == 1

    def test_gobackn_resends_from_first_missing(self):
        result = run_transfer(
            "blast", DATA_8, params=PARAMS, strategy="gobackn",
            error_model=DeterministicDrops([5]),   # data packet seq 5
        )
        assert result.data_intact
        assert result.stats.rounds == 2
        # Round 2 resends seqs 5, 6, 7 (from first missing to the end).
        assert result.stats.data_frames_sent == 8 + 3

    def test_selective_resends_only_missing(self):
        result = run_transfer(
            "blast", DATA_8, params=PARAMS, strategy="selective",
            error_model=DeterministicDrops([1, 5]),  # seqs 1 and 5
        )
        assert result.data_intact
        assert result.stats.rounds == 2
        assert result.stats.data_frames_sent == 8 + 2

    def test_gobackn_lost_reliable_last_retries_just_it(self):
        result = run_transfer(
            "blast", DATA_8, params=PARAMS, strategy="gobackn",
            error_model=DeterministicDrops([7]),   # the reliable last packet
        )
        assert result.data_intact
        # Only the last packet is retried; no extra round.
        assert result.stats.rounds == 1
        assert result.stats.data_frames_sent == 9
        assert result.stats.timeouts == 1

    def test_gobackn_lost_nak_retries_last_packet(self):
        # Frame 8 on the wire is the receiver's reply (after 8 data frames).
        result = run_transfer(
            "blast", DATA_8, params=PARAMS, strategy="gobackn",
            error_model=DeterministicDrops([8]),
        )
        assert result.data_intact
        assert result.stats.timeouts == 1
        assert result.stats.duplicates_received >= 1  # re-sent last packet

    def test_selective_lost_retransmission_retried_in_round(self):
        # Lose seq 3 in round 1 and its retransmission too (wire frames:
        # 0..7 data, 8 reply, 9 = seq3 again).  The round-2 working set is
        # a single packet, which is the round's *reliable* last packet —
        # so the loss is repaired by the periodic retry inside the round.
        result = run_transfer(
            "blast", DATA_8, params=PARAMS, strategy="selective",
            error_model=DeterministicDrops([3, 9]),
        )
        assert result.data_intact
        assert result.stats.rounds == 2
        assert result.stats.timeouts == 1
        assert result.stats.data_frames_sent == 8 + 2


class TestSlidingWindowRecovery:
    def test_lost_data_packet_selectively_retransmitted(self):
        # Wire order for SW: data0..data7 interleaved with acks; the first
        # frame (data0) is the easiest to script.
        result = run_transfer(
            "sliding_window", DATA_8, params=PARAMS,
            error_model=DeterministicDrops([0]),
        )
        assert result.data_intact
        assert result.stats.retransmitted_data_frames == 1
        assert result.stats.timeouts >= 1

    def test_lost_ack_causes_duplicate_data(self):
        # Wire order: data0, data1, ack0, ... — the receiver's ack defers
        # behind the sender's next data transmission (carrier sense), so
        # the first ack is wire frame 2.
        result = run_transfer(
            "sliding_window", DATA_8, params=PARAMS,
            error_model=DeterministicDrops([2]),
        )
        assert result.data_intact
        assert result.stats.duplicates_received == 1
        assert result.stats.retransmitted_data_frames == 1


class TestHeavyLoss:
    @pytest.mark.parametrize("protocol,kwargs", [
        ("stop_and_wait", {}),
        ("sliding_window", {}),
        ("blast", {"strategy": "full_no_nak"}),
        ("blast", {"strategy": "full_nak"}),
        ("blast", {"strategy": "gobackn"}),
        ("blast", {"strategy": "selective"}),
        ("multiblast", {"blast_packets": 4, "strategy": "gobackn"}),
    ])
    def test_ten_percent_loss_still_delivers(self, protocol, kwargs):
        result = run_transfer(
            protocol, DATA_8, params=PARAMS,
            error_model=BernoulliErrors(0.10, seed=1234),
            **kwargs,
        )
        assert result.data_intact
        assert result.data == DATA_8


class TestMultiblast:
    def test_chunking(self):
        data = bytes(20 * 1024)
        result = run_transfer("multiblast", data, params=PARAMS, blast_packets=8)
        assert result.data_intact
        assert result.n_packets == 20
        assert result.stats.rounds == 3  # chunks of 8, 8, 4

    def test_single_chunk_equivalent_to_blast(self):
        blast = run_transfer("blast", DATA_8, params=PARAMS, strategy="gobackn")
        multi = run_transfer("multiblast", DATA_8, params=PARAMS,
                             blast_packets=64, strategy="gobackn")
        assert multi.data_intact
        assert multi.elapsed_s == pytest.approx(blast.elapsed_s, rel=1e-9)

    def test_invalid_blast_packets(self):
        with pytest.raises(ValueError):
            run_transfer("multiblast", DATA_8, params=PARAMS, blast_packets=0)

    def test_loss_in_one_chunk_does_not_disturb_others(self):
        # Chunk 1 (frames 0-3 + reply), drop its seq 2 (wire frame 2).
        result = run_transfer(
            "multiblast", bytes(16 * 1024), params=PARAMS, blast_packets=4,
            strategy="selective", error_model=DeterministicDrops([2]),
        )
        assert result.data_intact
        assert result.stats.data_frames_sent == 16 + 1


class TestRunnerValidation:
    def test_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            run_transfer("carrier_pigeon", b"x")

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            run_transfer("blast", b"x", strategy="hope")

    def test_result_metadata(self):
        result = run_transfer("blast", DATA_8, params=PARAMS, strategy="selective")
        assert result.protocol == "blast"
        assert result.strategy == "selective"
        assert result.payload_bytes == len(DATA_8)
        assert result.throughput_bps > 0
