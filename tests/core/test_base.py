"""Unit tests for packetize/reassemble and TransferResult."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TransferResult, TransferStats, packetize, reassemble


class TestPacketize:
    def test_exact_multiple(self):
        frames = packetize(b"x" * 4096, 1024)
        assert len(frames) == 4
        assert all(len(f.payload) == 1024 for f in frames)
        assert [f.seq for f in frames] == [0, 1, 2, 3]
        assert all(f.total == 4 for f in frames)

    def test_ragged_tail(self):
        frames = packetize(b"x" * 2500, 1024)
        assert [len(f.payload) for f in frames] == [1024, 1024, 452]

    def test_empty_data_gives_one_empty_packet(self):
        frames = packetize(b"", 1024)
        assert len(frames) == 1
        assert frames[0].payload == b""
        assert frames[0].is_last

    def test_invalid_packet_size(self):
        with pytest.raises(ValueError):
            packetize(b"abc", 0)

    def test_transfer_id_propagates(self):
        frames = packetize(b"abc", 2, transfer_id=99)
        assert all(f.transfer_id == 99 for f in frames)

    def test_wire_bytes_equals_payload(self):
        frames = packetize(b"x" * 1500, 1024)
        assert [f.wire_bytes for f in frames] == [1024, 476]


class TestReassemble:
    def test_roundtrip(self):
        data = bytes(range(256)) * 17
        frames = packetize(data, 100)
        payloads = {f.seq: f.payload for f in frames}
        assert reassemble(payloads, len(frames)) == data

    def test_missing_packet_rejected(self):
        with pytest.raises(ValueError, match="missing packets"):
            reassemble({0: b"a", 2: b"c"}, 3)

    def test_extra_packet_rejected(self):
        with pytest.raises(ValueError):
            reassemble({0: b"a", 1: b"b"}, 1)

    @given(data=st.binary(max_size=5000), packet=st.integers(1, 700))
    @settings(max_examples=100)
    def test_packetize_reassemble_inverse(self, data, packet):
        frames = packetize(data, packet)
        assert reassemble({f.seq: f.payload for f in frames}, len(frames)) == data
        # Size invariant: no bytes created or lost.
        assert sum(len(f.payload) for f in frames) == len(data)


class TestTransferResult:
    def _result(self, **overrides):
        defaults = dict(
            protocol="blast",
            strategy="gobackn",
            ok=True,
            elapsed_s=0.1,
            n_packets=64,
            payload_bytes=64 * 1024,
            data=b"",
            data_intact=True,
            stats=TransferStats(data_frames_sent=64),
        )
        defaults.update(overrides)
        return TransferResult(**defaults)

    def test_throughput(self):
        result = self._result(elapsed_s=1.0, payload_bytes=1_000_000)
        assert result.throughput_bps == pytest.approx(8e6)

    def test_throughput_zero_elapsed(self):
        assert self._result(elapsed_s=0.0).throughput_bps == float("inf")

    def test_goodput_fraction_perfect(self):
        assert self._result().goodput_fraction == 1.0

    def test_goodput_fraction_with_retransmissions(self):
        result = self._result(stats=TransferStats(data_frames_sent=128))
        assert result.goodput_fraction == 0.5

    def test_goodput_fraction_no_frames(self):
        assert self._result(stats=TransferStats()).goodput_fraction == 0.0
