"""Unit and property tests for the byte-level wire format."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AckFrame, ControlFrame, DataFrame, NakFrame, WireError, decode, encode
from repro.core.frames import FrameKind
from repro.core.wire import (
    HEADER2_BYTES,
    HEADER_BYTES,
    _bitmap_from_missing,
    _missing_from_bitmap,
    encode_into,
    peek,
)

#: One frame per kind in both wire versions, plus bitmap/payload edges —
#: the corpus every encode_into equivalence assertion runs over.
CANONICAL_FRAMES = [
    DataFrame(7, 3, 10, b"hello world", wants_reply=True),
    DataFrame(1, 0, 1, b""),  # empty payload
    DataFrame(7, 3, 10, b"hello", stream_id=42),
    DataFrame(2**32 - 1, 299, 300, b"x" * 1500, stream_id=2**32 - 1),
    AckFrame(9, seq=63),
    AckFrame(7, seq=3, stream_id=9),
    NakFrame(5, first_missing=1, missing=(1, 3, 62), total=64),
    NakFrame(3, first_missing=0, missing=tuple(range(512)), total=512),
    NakFrame(7, first_missing=1, missing=(1, 4), total=10, stream_id=9),
    ControlFrame(4, request_id=2, body=b'{"op": "pull"}'),
    ControlFrame(7, request_id=2, body=b"{}", stream_id=9),
]


class TestRoundTrips:
    def test_data_frame(self):
        frame = DataFrame(7, 3, 10, b"hello world", wants_reply=True)
        decoded = decode(encode(frame))
        assert isinstance(decoded, DataFrame)
        assert decoded.transfer_id == 7
        assert decoded.seq == 3
        assert decoded.total == 10
        assert decoded.payload == b"hello world"
        assert decoded.wants_reply

    def test_ack_frame(self):
        decoded = decode(encode(AckFrame(9, seq=63)))
        assert isinstance(decoded, AckFrame)
        assert decoded.transfer_id == 9
        assert decoded.seq == 63

    def test_nak_frame(self):
        nak = NakFrame(5, first_missing=1, missing=(1, 3, 62), total=64)
        decoded = decode(encode(nak))
        assert isinstance(decoded, NakFrame)
        assert decoded.first_missing == 1
        assert decoded.missing == (1, 3, 62)
        assert decoded.total == 64

    def test_empty_payload_data_frame(self):
        decoded = decode(encode(DataFrame(1, 0, 1, b"")))
        assert decoded.payload == b""

    def test_wire_bytes_reflects_datagram_size(self):
        frame = DataFrame(1, 0, 1, b"x" * 50)
        datagram = encode(frame)
        assert decode(datagram).wire_bytes == len(datagram) == HEADER_BYTES + 50

    @given(
        xfer=st.integers(0, 2**32 - 1),
        total=st.integers(1, 300),
        payload=st.binary(max_size=1500),
        wants_reply=st.booleans(),
        data=st.data(),
    )
    @settings(max_examples=150)
    def test_data_roundtrip_property(self, xfer, total, payload, wants_reply, data):
        seq = data.draw(st.integers(0, total - 1))
        frame = DataFrame(xfer, seq, total, payload, wants_reply=wants_reply)
        decoded = decode(encode(frame))
        assert (decoded.transfer_id, decoded.seq, decoded.total,
                decoded.payload, decoded.wants_reply) == (
                    xfer, seq, total, payload, wants_reply)

    @given(total=st.integers(1, 512), data=st.data())
    @settings(max_examples=150)
    def test_nak_roundtrip_property(self, total, data):
        missing = data.draw(
            st.sets(st.integers(0, total - 1), min_size=1, max_size=total)
        )
        missing = tuple(sorted(missing))
        nak = NakFrame(3, first_missing=missing[0], missing=missing, total=total)
        decoded = decode(encode(nak))
        assert decoded.missing == missing
        assert decoded.first_missing == missing[0]


class TestStreamVersion:
    """Version-2 frames carry a stream id; version 1 stays byte-stable."""

    def test_stream_zero_encodes_version_1(self):
        datagram = encode(DataFrame(7, 3, 10, b"hello", stream_id=0))
        assert datagram[2] == 1  # version byte
        assert len(datagram) == HEADER_BYTES + 5

    def test_nonzero_stream_encodes_version_2(self):
        datagram = encode(DataFrame(7, 3, 10, b"hello", stream_id=42))
        assert datagram[2] == 2
        assert len(datagram) == HEADER2_BYTES + 5

    def test_stream_roundtrip_all_kinds(self):
        frames = [
            DataFrame(7, 3, 10, b"hello", wants_reply=True, stream_id=9),
            AckFrame(7, seq=3, stream_id=9),
            NakFrame(7, first_missing=1, missing=(1, 4), total=10, stream_id=9),
            ControlFrame(7, request_id=2, body=b"{}", stream_id=9),
        ]
        for frame in frames:
            decoded = decode(encode(frame))
            assert decoded.stream_id == 9
            assert decoded.transfer_id == 7
            assert type(decoded) is type(frame)

    def test_version_1_decodes_to_stream_zero(self):
        decoded = decode(encode(AckFrame(9, seq=63)))
        assert decoded.stream_id == 0

    def test_v1_bytes_unchanged_by_stream_field(self):
        """The stream-id addition must not perturb the legacy encoding."""
        datagram = encode(DataFrame(1, 0, 1, b"payload"))
        import struct
        import zlib
        header = struct.pack(">HBBIIIBH", 0x5A57, 1, 1, 1, 0, 1, 0, 7)
        crc = zlib.crc32(header + b"payload") & 0xFFFFFFFF
        assert datagram == header + struct.pack(">I", crc) + b"payload"

    def test_v2_frame_claiming_stream_zero_rejected(self):
        datagram = bytearray(encode(AckFrame(1, seq=0, stream_id=5)))
        # forge stream=0 and re-stamp the CRC
        import struct
        import zlib
        datagram[4:8] = struct.pack(">I", 0)
        body = bytes(datagram[:16])
        datagram[16:20] = struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)
        with pytest.raises(WireError, match="stream 0"):
            decode(bytes(datagram))

    def test_corrupted_v2_frame_fails_crc(self):
        datagram = bytearray(encode(DataFrame(1, 0, 1, b"x" * 20, stream_id=3)))
        datagram[-4] ^= 0x10
        with pytest.raises(WireError):
            decode(bytes(datagram))

    @given(
        stream=st.integers(1, 2**32 - 1),
        xfer=st.integers(0, 2**32 - 1),
        payload=st.binary(max_size=600),
    )
    @settings(max_examples=100)
    def test_v2_data_roundtrip_property(self, stream, xfer, payload):
        frame = DataFrame(xfer, 0, 1, payload, stream_id=stream)
        decoded = decode(encode(frame))
        assert (decoded.stream_id, decoded.transfer_id, decoded.payload) == (
            stream, xfer, payload)

    def test_peek_reads_v2_header(self):
        from repro.core.frames import FrameKind
        from repro.core.wire import peek
        kind, seq = peek(encode(DataFrame(1, 4, 9, b"z", stream_id=77)))
        assert kind is FrameKind.DATA
        assert seq == 4


class TestCorruptionHandling:
    def test_truncated_datagram(self):
        with pytest.raises(WireError, match="too short"):
            decode(b"\x5a\x57\x01")

    def test_bad_magic(self):
        datagram = bytearray(encode(AckFrame(1, seq=0)))
        datagram[0] ^= 0xFF
        with pytest.raises(WireError, match="magic"):
            decode(bytes(datagram))

    def test_bad_version(self):
        datagram = bytearray(encode(AckFrame(1, seq=0)))
        datagram[2] = 99
        with pytest.raises(WireError, match="version"):
            decode(bytes(datagram))

    def test_flipped_payload_bit_fails_crc(self):
        datagram = bytearray(encode(DataFrame(1, 0, 1, b"payload")))
        datagram[-1] ^= 0x01
        with pytest.raises(WireError, match="CRC"):
            decode(bytes(datagram))

    def test_flipped_header_bit_fails(self):
        datagram = bytearray(encode(DataFrame(1, 2, 8, b"payload")))
        datagram[8] ^= 0x40  # somewhere in the seq field
        with pytest.raises(WireError):
            decode(bytes(datagram))

    def test_length_mismatch(self):
        datagram = encode(DataFrame(1, 0, 1, b"payload"))
        with pytest.raises(WireError):
            decode(datagram + b"extra")

    def test_unknown_kind(self):
        datagram = bytearray(encode(AckFrame(1, seq=0)))
        datagram[3] = 42  # kind byte
        with pytest.raises(WireError):
            decode(bytes(datagram))

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(TypeError):
            encode("not a frame")  # type: ignore[arg-type]

    @given(noise=st.binary(min_size=0, max_size=80))
    @settings(max_examples=100)
    def test_random_bytes_never_crash(self, noise):
        """decode() on garbage raises WireError, never anything else."""
        try:
            decode(noise)
        except WireError:
            pass

    @given(payload=st.binary(max_size=200), position=st.integers(0, 10**6),
           bit=st.integers(0, 7))
    @settings(max_examples=150)
    def test_single_bitflip_detected(self, payload, position, bit):
        """Any single-bit corruption is caught (CRC-32 guarantees it)."""
        datagram = bytearray(encode(DataFrame(1, 0, 1, payload)))
        datagram[position % len(datagram)] ^= 1 << bit
        with pytest.raises(WireError):
            decode(bytes(datagram))


class TestNakBitmap:
    """The NAK bitmap fast path: table-driven parse, zero-byte skip."""

    def test_all_missing_round_trip(self):
        total = 512  # the paper's full-size blast: a 64-byte bitmap
        nak = NakFrame(
            11, first_missing=0, missing=tuple(range(total)), total=total
        )
        decoded = decode(encode(nak))
        assert decoded.missing == tuple(range(total))
        assert decoded.total == total

    def test_none_missing_bitmap_is_all_zero(self):
        assert _bitmap_from_missing((), 512) == bytes(64)
        assert _missing_from_bitmap(bytes(64), 512) == ()

    def test_all_missing_bitmap_is_all_ones(self):
        bitmap = _bitmap_from_missing(tuple(range(512)), 512)
        assert bitmap == b"\xff" * 64
        assert _missing_from_bitmap(bitmap, 512) == tuple(range(512))

    def test_padding_bits_beyond_total_are_ignored(self):
        # total=10 occupies 2 bytes; the last 6 bits are padding and
        # must not invent packet numbers >= total.
        assert _missing_from_bitmap(b"\xff\xff", 10) == tuple(range(10))

    def test_sparse_bitmap_round_trip(self):
        missing = (0, 7, 8, 63, 300, 511)
        bitmap = _bitmap_from_missing(missing, 512)
        assert _missing_from_bitmap(bitmap, 512) == missing

    @given(
        total=st.integers(1, 512),
        data=st.data(),
    )
    @settings(max_examples=150)
    def test_bitmap_round_trip_property(self, total, data):
        missing = tuple(
            sorted(
                data.draw(
                    st.sets(st.integers(0, total - 1), min_size=0, max_size=total)
                )
            )
        )
        bitmap = _bitmap_from_missing(missing, total)
        assert len(bitmap) == (total + 7) // 8
        assert _missing_from_bitmap(bitmap, total) == missing


class TestPeek:
    """peek() classifies without CRC checks or payload parsing."""

    def test_peek_every_kind_both_versions(self):
        for stream in (0, 9):
            frames = [
                (DataFrame(1, 5, 8, b"x", stream_id=stream), FrameKind.DATA, 5),
                (AckFrame(1, seq=7, stream_id=stream), FrameKind.ACK, 7),
                (
                    NakFrame(1, first_missing=2, missing=(2, 3), total=8,
                             stream_id=stream),
                    FrameKind.NAK,
                    2,
                ),
                (
                    ControlFrame(1, request_id=33, body=b"", stream_id=stream),
                    FrameKind.CONTROL,
                    33,
                ),
            ]
            for frame, kind, seq in frames:
                assert peek(encode(frame)) == (kind, seq)

    def test_peek_rejects_short_and_foreign_datagrams(self):
        assert peek(b"") == (None, None)
        assert peek(b"\x00" * 4) == (None, None)
        assert peek(b"not a protocol frame at all") == (None, None)

    def test_peek_rejects_unknown_version_and_kind(self):
        datagram = bytearray(encode(AckFrame(1, seq=0)))
        datagram[2] = 3  # version byte
        assert peek(bytes(datagram)) == (None, None)
        datagram = bytearray(encode(AckFrame(1, seq=0)))
        datagram[3] = 42  # kind byte
        assert peek(bytes(datagram)) == (None, None)

    def test_peek_ignores_payload_corruption(self):
        # Fault rules must classify traffic they do not consume, so peek
        # tolerates what decode() rejects.
        datagram = bytearray(encode(DataFrame(1, 4, 8, b"payload")))
        datagram[-1] ^= 0xFF
        assert peek(bytes(datagram)) == (FrameKind.DATA, 4)
        with pytest.raises(WireError):
            decode(bytes(datagram))


class TestEncodeInto:
    """encode_into must be byte-for-byte the in-place twin of encode."""

    @pytest.mark.parametrize(
        "frame", CANONICAL_FRAMES, ids=lambda f: f"{type(f).__name__}-s{f.stream_id}"
    )
    def test_exact_byte_equivalence(self, frame):
        expected = encode(frame)
        buf = bytearray(len(expected))
        n = encode_into(frame, buf)
        assert n == len(expected)
        assert bytes(buf[:n]) == expected

    @pytest.mark.parametrize(
        "frame", CANONICAL_FRAMES, ids=lambda f: f"{type(f).__name__}-s{f.stream_id}"
    )
    def test_offset_and_dirty_buffer(self, frame):
        # A reused (dirty) buffer and a nonzero offset must not leak into
        # the encoding; bytes outside the written window stay untouched.
        expected = encode(frame)
        buf = bytearray(b"\xaa" * (len(expected) + 16))
        n = encode_into(frame, buf, offset=7)
        assert n == len(expected)
        assert bytes(buf[7:7 + n]) == expected
        assert bytes(buf[:7]) == b"\xaa" * 7
        assert bytes(buf[7 + n:]) == b"\xaa" * (len(buf) - 7 - n)

    @pytest.mark.parametrize(
        "frame", CANONICAL_FRAMES, ids=lambda f: f"{type(f).__name__}-s{f.stream_id}"
    )
    def test_decodes_from_memoryview_window(self, frame):
        buf = bytearray(4096)
        n = encode_into(frame, buf)
        decoded = decode(memoryview(buf)[:n])
        assert type(decoded) is type(frame)
        assert decoded.transfer_id == frame.transfer_id
        assert decoded.stream_id == frame.stream_id

    def test_buffer_too_small_raises_before_writing(self):
        frame = DataFrame(7, 3, 10, b"hello world")
        short = bytearray(HEADER_BYTES)  # header fits, payload does not
        with pytest.raises(WireError, match="buffer"):
            encode_into(frame, short)
        assert bytes(short) == b"\x00" * len(short)  # nothing written

    def test_negative_offset_rejected(self):
        with pytest.raises(WireError):
            encode_into(AckFrame(1, seq=0), bytearray(64), offset=-1)

    def test_offset_past_end_rejected(self):
        with pytest.raises(WireError):
            encode_into(AckFrame(1, seq=0), bytearray(8), offset=4)

    @given(
        xfer=st.integers(0, 2**32 - 1),
        stream=st.integers(0, 2**32 - 1),
        payload=st.binary(max_size=1500),
        offset=st.integers(0, 64),
    )
    @settings(max_examples=150)
    def test_equivalence_property(self, xfer, stream, payload, offset):
        frame = DataFrame(xfer, 0, 1, payload, stream_id=stream)
        expected = encode(frame)
        buf = bytearray(offset + len(expected))
        assert encode_into(frame, buf, offset) == len(expected)
        assert bytes(buf[offset:]) == expected
