"""Tests for retransmission-timeout policies."""

import pytest

from repro.core import AdaptiveTimeout, FixedTimeout


class TestFixedTimeout:
    def test_constant(self):
        policy = FixedTimeout(0.5)
        assert policy.current() == 0.5
        policy.record_sample(0.1)
        policy.record_timeout()
        assert policy.current() == 0.5  # fixed means fixed

    def test_validation(self):
        with pytest.raises(ValueError):
            FixedTimeout(0.0)


class TestAdaptiveTimeout:
    def test_initial_value_respected(self):
        assert AdaptiveTimeout(initial_s=2.0).current() == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveTimeout(initial_s=0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(alpha=0)
        with pytest.raises(ValueError):
            AdaptiveTimeout(backoff=0.5)
        with pytest.raises(ValueError):
            AdaptiveTimeout(min_s=1.0, max_s=0.5)
        with pytest.raises(ValueError):
            AdaptiveTimeout().record_sample(-1.0)

    def test_first_sample_initialises_rfc6298(self):
        policy = AdaptiveTimeout(initial_s=10.0, k=4.0)
        policy.record_sample(0.1)
        assert policy.srtt == pytest.approx(0.1)
        assert policy.rttvar == pytest.approx(0.05)
        assert policy.current() == pytest.approx(0.1 + 4 * 0.05)

    def test_converges_on_steady_rtt(self):
        policy = AdaptiveTimeout(initial_s=10.0)
        for _ in range(100):
            policy.record_sample(0.05)
        # Variance decays to ~0, RTO approaches the true RTT.
        assert policy.current() == pytest.approx(0.05, rel=0.05)

    def test_variance_widens_rto(self):
        steady = AdaptiveTimeout(initial_s=1.0)
        jittery = AdaptiveTimeout(initial_s=1.0)
        for index in range(100):
            steady.record_sample(0.05)
            jittery.record_sample(0.05 if index % 2 else 0.15)
        assert jittery.current() > steady.current()

    def test_backoff_on_timeout(self):
        policy = AdaptiveTimeout(initial_s=0.1, backoff=2.0, max_s=1.0)
        policy.record_timeout()
        assert policy.current() == pytest.approx(0.2)
        for _ in range(10):
            policy.record_timeout()
        assert policy.current() == 1.0  # clamped at max_s
        assert policy.expirations == 11

    def test_bounds_clamp(self):
        policy = AdaptiveTimeout(initial_s=1.0, min_s=0.01, max_s=2.0)
        policy.record_sample(1e-6)
        assert policy.current() >= 0.01
        for _ in range(50):
            policy.record_sample(100.0)
        assert policy.current() <= 2.0


class TestAdaptiveInBlastEngine:
    def test_policy_reused_across_transfers_converges(self):
        """A long-lived sender with a terrible initial guess pays once,
        then runs at the error-free time."""
        from repro.analysis import t_blast
        from repro.core import BlastTransfer
        from repro.sim import Environment
        from repro.simnet import NetworkParams, make_lan

        policy = AdaptiveTimeout(initial_s=5.0)
        params = NetworkParams.standalone()
        env = Environment()
        sender, receiver, _ = make_lan(env, params)
        elapsed = []

        def run_all():
            for index in range(5):
                transfer = BlastTransfer(
                    env, sender, receiver, bytes(16 * 1024),
                    strategy="full_nak", transfer_id=index + 1,
                    timeout_policy=policy,
                )
                start = env.now
                yield transfer.launch()
                elapsed.append(env.now - start)

        env.run(env.process(run_all()))
        t0 = t_blast(16, params)
        assert all(t == pytest.approx(t0, rel=0.01) for t in elapsed)
        assert policy.samples == 5
        assert policy.current() < 2 * t0

    def test_adaptive_in_stop_and_wait(self):
        """SAW samples every clean packet exchange, so the estimate
        converges *within* one multi-packet transfer."""
        from repro.analysis import t_single_exchange, t_stop_and_wait
        from repro.core import run_transfer
        from repro.simnet import NetworkParams

        params = NetworkParams.standalone()
        policy = AdaptiveTimeout(initial_s=1.0)
        result = run_transfer(
            "stop_and_wait", bytes(32 * 1024), params=params,
            timeout_policy=policy,
        )
        assert result.data_intact
        # Error-free: the bad initial RTO never fires, elapsed is exact.
        assert result.elapsed_s == pytest.approx(t_stop_and_wait(32, params))
        assert policy.samples == 32
        assert policy.srtt == pytest.approx(t_single_exchange(params), rel=0.01)

    def test_adaptive_recovers_from_loss(self):
        from repro.core import run_transfer
        from repro.simnet import DeterministicDrops, NetworkParams

        result = run_transfer(
            "blast", bytes(8 * 1024), params=NetworkParams.standalone(),
            strategy="full_no_nak", error_model=DeterministicDrops([2]),
            timeout_policy=AdaptiveTimeout(initial_s=0.05),
        )
        assert result.data_intact
        assert result.stats.timeouts == 1
