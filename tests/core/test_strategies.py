"""Unit tests for retransmission strategies (pure decision logic)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FailureDetection,
    FullRetransmission,
    FullRetransmissionWithNak,
    GoBackN,
    ReceiverTracker,
    SelectiveRepeat,
    STRATEGY_REGISTRY,
    get_strategy,
)


def report_for(total, received):
    tracker = ReceiverTracker(total)
    for seq in received:
        tracker.add(seq)
    return tracker.report()


class TestRegistry:
    def test_all_four_registered(self):
        assert set(STRATEGY_REGISTRY) == {
            "full_no_nak", "full_nak", "gobackn", "selective",
        }

    def test_get_strategy(self):
        assert isinstance(get_strategy("gobackn"), GoBackN)

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            get_strategy("warp-speed")

    def test_modes(self):
        assert FullRetransmission.mode is FailureDetection.TIMER_ONLY
        assert FullRetransmissionWithNak.mode is FailureDetection.NAK_ON_LAST
        assert GoBackN.mode is FailureDetection.LAST_PACKET_RELIABLE
        assert SelectiveRepeat.mode is FailureDetection.LAST_PACKET_RELIABLE

    def test_uses_nak(self):
        assert not FullRetransmission().uses_nak
        assert FullRetransmissionWithNak().uses_nak
        assert GoBackN().uses_nak
        assert SelectiveRepeat().uses_nak


class TestWorkingSets:
    def test_full_resends_everything(self):
        report = report_for(8, [0, 1, 2, 4, 5, 6, 7])
        for strategy in (FullRetransmission(), FullRetransmissionWithNak()):
            assert strategy.next_working_set(8, report) == list(range(8))

    def test_gobackn_resends_from_first_missing(self):
        report = report_for(8, [0, 1, 2, 4, 5, 6, 7])  # missing 3
        assert GoBackN().next_working_set(8, report) == [3, 4, 5, 6, 7]

    def test_selective_resends_only_missing(self):
        report = report_for(8, [0, 2, 4, 6, 7])
        assert SelectiveRepeat().next_working_set(8, report) == [1, 3, 5]

    def test_no_report_falls_back_to_full(self):
        """A timer-detected failure carries no reception information."""
        for strategy in (GoBackN(), SelectiveRepeat()):
            assert strategy.next_working_set(8, None) == list(range(8))

    @given(total=st.integers(1, 100), data=st.data())
    @settings(max_examples=100)
    def test_working_set_invariants(self, total, data):
        received = data.draw(st.sets(st.integers(0, total - 1), max_size=total - 1))
        report = report_for(total, received)
        missing = set(range(total)) - set(received)
        for strategy in (FullRetransmission(), FullRetransmissionWithNak(),
                         GoBackN(), SelectiveRepeat()):
            working = strategy.next_working_set(total, report)
            # Every working set covers all missing packets...
            assert missing <= set(working)
            # ...is sorted and duplicate-free...
            assert working == sorted(set(working))
            # ...and selective is minimal while full is maximal.
            assert set(SelectiveRepeat().next_working_set(total, report)) == missing
        go = set(GoBackN().next_working_set(total, report))
        sel = set(SelectiveRepeat().next_working_set(total, report))
        full = set(FullRetransmission().next_working_set(total, report))
        assert sel <= go <= full
