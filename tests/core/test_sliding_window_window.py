"""Tests for the finite-window extension of the sliding-window engine."""

import pytest

from repro.analysis import t_stop_and_wait
from repro.core import run_transfer
from repro.simnet import BernoulliErrors, NetworkParams

DATA = bytes(16 * 1024)
PARAMS = NetworkParams.standalone()


class TestFiniteWindow:
    def test_window_one_degenerates_to_stop_and_wait(self):
        """W=1 means 'wait for each ack before the next packet' — exactly
        stop-and-wait, and the elapsed times agree to float precision."""
        sw1 = run_transfer("sliding_window", DATA, params=PARAMS, window=1)
        assert sw1.elapsed_s == pytest.approx(t_stop_and_wait(16, PARAMS), rel=1e-9)

    def test_small_window_suffices_on_a_lan(self):
        """The paper's never-closing-window assumption quantified: with the
        LAN's tiny bandwidth-delay product, W=3 already matches W=inf."""
        infinite = run_transfer("sliding_window", DATA, params=PARAMS).elapsed_s
        w3 = run_transfer("sliding_window", DATA, params=PARAMS, window=3).elapsed_s
        assert w3 == pytest.approx(infinite, rel=0.005)

    def test_elapsed_monotone_in_window(self):
        times = [
            run_transfer("sliding_window", DATA, params=PARAMS, window=w).elapsed_s
            for w in (1, 2, 3, 8)
        ]
        assert times == sorted(times, reverse=True)

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            run_transfer("sliding_window", DATA, params=PARAMS, window=0)

    def test_windowed_transfer_survives_loss(self):
        result = run_transfer(
            "sliding_window", DATA, params=PARAMS, window=4,
            error_model=BernoulliErrors(0.05, seed=3),
        )
        assert result.data_intact

    def test_window_equal_to_transfer_size_is_infinite(self):
        infinite = run_transfer("sliding_window", DATA, params=PARAMS).elapsed_s
        w16 = run_transfer("sliding_window", DATA, params=PARAMS, window=16).elapsed_s
        assert w16 == pytest.approx(infinite, rel=1e-12)
