"""Unit tests for frame types."""

import pytest

from repro.core import AckFrame, DataFrame, FrameKind, NakFrame, with_reply_flag


class TestDataFrame:
    def test_wire_bytes_defaults_to_payload_length(self):
        frame = DataFrame(transfer_id=1, seq=0, total=4, payload=b"x" * 100)
        assert frame.wire_bytes == 100

    def test_explicit_wire_bytes(self):
        frame = DataFrame(1, 0, 1, b"abc", wire_bytes=1024)
        assert frame.wire_bytes == 1024

    def test_seq_range_validation(self):
        with pytest.raises(ValueError):
            DataFrame(1, 4, 4, b"")
        with pytest.raises(ValueError):
            DataFrame(1, -1, 4, b"")
        with pytest.raises(ValueError):
            DataFrame(1, 0, 0, b"")

    def test_is_last(self):
        assert DataFrame(1, 3, 4, b"").is_last
        assert not DataFrame(1, 2, 4, b"").is_last
        assert DataFrame(1, 0, 1, b"").is_last

    def test_kind(self):
        assert DataFrame(1, 0, 1, b"").kind is FrameKind.DATA

    def test_frozen(self):
        frame = DataFrame(1, 0, 1, b"")
        with pytest.raises(AttributeError):
            frame.seq = 5  # type: ignore[misc]


class TestReplyFlag:
    def test_sets_flag(self):
        frame = DataFrame(1, 0, 1, b"data")
        flagged = with_reply_flag(frame)
        assert flagged.wants_reply
        assert not frame.wants_reply  # original untouched
        assert flagged.payload == frame.payload

    def test_noop_returns_same_object(self):
        frame = DataFrame(1, 0, 1, b"", wants_reply=True)
        assert with_reply_flag(frame) is frame

    def test_clear_flag(self):
        frame = DataFrame(1, 0, 1, b"", wants_reply=True)
        assert not with_reply_flag(frame, wants_reply=False).wants_reply


class TestAckFrame:
    def test_kind_and_fields(self):
        ack = AckFrame(transfer_id=7, seq=3)
        assert ack.kind is FrameKind.ACK
        assert ack.wire_bytes == 64  # paper's ack size by default

    def test_validation(self):
        with pytest.raises(ValueError):
            AckFrame(1, seq=-1)
        with pytest.raises(ValueError):
            AckFrame(1, seq=0, wire_bytes=-1)


class TestNakFrame:
    def test_valid_nak(self):
        nak = NakFrame(1, first_missing=2, missing=(2, 5), total=8)
        assert nak.kind is FrameKind.NAK

    def test_empty_missing_rejected(self):
        with pytest.raises(ValueError):
            NakFrame(1, first_missing=0, missing=(), total=4)

    def test_inconsistent_first_missing_rejected(self):
        with pytest.raises(ValueError):
            NakFrame(1, first_missing=1, missing=(2, 5), total=8)

    def test_unsorted_missing_rejected(self):
        with pytest.raises(ValueError):
            NakFrame(1, first_missing=5, missing=(5, 2), total=8)

    def test_duplicate_missing_rejected(self):
        with pytest.raises(ValueError):
            NakFrame(1, first_missing=2, missing=(2, 2), total=8)

    def test_out_of_range_missing_rejected(self):
        with pytest.raises(ValueError):
            NakFrame(1, first_missing=2, missing=(2, 8), total=8)
