"""Tests for the whole-segment software checksum extension.

The paper's related work (Spector) suggests "an overall software
checksum on the entire data segment"; these tests exercise the hazard it
protects against (silent interface corruption past the link CRC) and the
protection itself.
"""

import pytest

from repro.core import run_transfer
from repro.simnet import (
    BernoulliErrors,
    CompositeErrors,
    NetworkParams,
    SilentCorruption,
    TraceRecorder,
)

DATA = bytes(range(256)) * 64  # 16 KB
PARAMS = NetworkParams.standalone()


class TestSilentCorruptionModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            SilentCorruption(1.5)

    def test_never_drops(self):
        model = SilentCorruption(1.0, seed=1)
        assert not any(model.drops(None) for _ in range(100))
        assert all(model.corrupts(None) for _ in range(100))

    def test_reset(self):
        model = SilentCorruption(0.5, seed=2)
        first = [model.corrupts(None) for _ in range(50)]
        model.reset()
        assert [model.corrupts(None) for _ in range(50)] == first

    def test_medium_counts_corrupted_frames(self):
        trace = TraceRecorder()
        from repro.sim import Environment
        from repro.simnet import make_lan
        from repro.core import BlastTransfer

        env = Environment()
        sender, receiver, medium = make_lan(
            env, PARAMS, error_model=SilentCorruption(1.0, seed=3), trace=trace
        )
        # With p=1 every ack is corrupted too (= lost), so the transfer
        # cannot complete; cap the rounds and inspect the counters.
        transfer = BlastTransfer(
            env, sender, receiver, bytes(2 * 1024), max_rounds=3
        )
        with pytest.raises(RuntimeError):
            env.run(transfer.launch())
        assert medium.frames_corrupted >= 2  # the data frames, each round
        corrupt_spans = [s for s in trace.spans if s.kind == "corrupt"]
        assert len(corrupt_spans) == medium.frames_corrupted

    def test_corrupted_ack_becomes_a_loss(self):
        """Control frames have no payload to damage silently; corruption
        makes them garbage, i.e. indistinguishable from loss."""
        from repro.sim import Environment
        from repro.simnet import make_lan
        from repro.core import BlastTransfer

        env = Environment()
        # Corrupt everything: data frames arrive damaged, acks are lost.
        sender, receiver, medium = make_lan(
            env, PARAMS, error_model=SilentCorruption(1.0, seed=4)
        )
        transfer = BlastTransfer(
            env, sender, receiver, bytes(1024), strategy="gobackn",
            max_rounds=5,
        )
        done = transfer.launch()
        with pytest.raises(RuntimeError):
            env.run(done)
        assert medium.frames_dropped > 0  # the corrupted replies


class TestChecksumProtection:
    def test_corruption_without_checksum_goes_undetected(self):
        """The hazard: the transfer 'succeeds' but the data is wrong."""
        result = run_transfer(
            "blast", DATA, params=PARAMS, strategy="gobackn",
            error_model=SilentCorruption(0.1, seed=4),
        )
        assert not result.data_intact          # silently wrong!
        assert result.stats.rounds == 1        # and nobody noticed

    def test_checksum_detects_and_repairs(self):
        result = run_transfer(
            "blast", DATA, params=PARAMS, strategy="gobackn",
            error_model=SilentCorruption(0.1, seed=4),
            verify_checksum=True,
        )
        assert result.data_intact
        assert result.stats.rounds > 1  # corruption forced retransmission

    def test_checksum_with_timer_only_strategy(self):
        """Without NAKs the checksum failure surfaces via sender timeout."""
        result = run_transfer(
            "blast", DATA, params=PARAMS, strategy="full_no_nak",
            error_model=SilentCorruption(0.05, seed=6),
            verify_checksum=True,
        )
        assert result.data_intact
        assert result.stats.timeouts >= 1

    def test_checksum_free_when_data_clean(self):
        result = run_transfer("blast", DATA, params=PARAMS, verify_checksum=True)
        assert result.data_intact
        assert result.stats.rounds == 1

    def test_checksum_costs_cpu_time(self):
        plain = run_transfer("blast", DATA, params=PARAMS).elapsed_s
        checked = run_transfer(
            "blast", DATA, params=PARAMS, verify_checksum=True,
            checksum_bytes_per_s=2e6,
        ).elapsed_s
        # Sender + receiver each checksum 16 KB at 2 MB/s ~ 8.2 ms each.
        assert checked - plain == pytest.approx(2 * len(DATA) / 2e6, rel=0.05)

    def test_checksum_with_loss_and_corruption_combined(self):
        model = CompositeErrors([
            BernoulliErrors(0.02, seed=7),
            SilentCorruption(0.02, seed=8),
        ])
        result = run_transfer(
            "blast", DATA, params=PARAMS, strategy="selective",
            error_model=model, verify_checksum=True,
        )
        assert result.data_intact

    def test_invalid_checksum_rate(self):
        with pytest.raises(ValueError):
            run_transfer("blast", DATA, params=PARAMS,
                         verify_checksum=True, checksum_bytes_per_s=0)
