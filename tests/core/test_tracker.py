"""Unit and property tests for the receiver tracker."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ReceiverTracker


class TestTrackerBasics:
    def test_starts_empty(self):
        tracker = ReceiverTracker(4)
        assert tracker.received_count == 0
        assert not tracker.is_complete
        assert tracker.first_missing == 0
        assert tracker.missing() == (0, 1, 2, 3)

    def test_invalid_total(self):
        with pytest.raises(ValueError):
            ReceiverTracker(0)

    def test_add_returns_new_flag(self):
        tracker = ReceiverTracker(4)
        assert tracker.add(2) is True
        assert tracker.add(2) is False
        assert tracker.duplicates == 1

    def test_add_out_of_range(self):
        tracker = ReceiverTracker(4)
        with pytest.raises(ValueError):
            tracker.add(4)
        with pytest.raises(ValueError):
            tracker.add(-1)

    def test_completion(self):
        tracker = ReceiverTracker(3)
        for seq in (2, 0, 1):
            tracker.add(seq)
        assert tracker.is_complete
        assert tracker.first_missing is None
        assert tracker.missing() == ()

    def test_first_missing_moves_forward(self):
        tracker = ReceiverTracker(5)
        tracker.add(0)
        tracker.add(1)
        tracker.add(3)
        assert tracker.first_missing == 2
        tracker.add(2)
        assert tracker.first_missing == 4

    def test_has(self):
        tracker = ReceiverTracker(4)
        tracker.add(1)
        assert tracker.has(1)
        assert not tracker.has(0)


class TestReports:
    def test_incomplete_report(self):
        tracker = ReceiverTracker(4)
        tracker.add(0)
        tracker.add(3)
        report = tracker.report()
        assert not report.complete
        assert report.first_missing == 1
        assert report.missing == (1, 2)
        assert report.total == 4

    def test_complete_report(self):
        tracker = ReceiverTracker(2)
        tracker.add(0)
        tracker.add(1)
        report = tracker.report()
        assert report.complete
        assert report.first_missing is None
        assert report.missing == ()

    @given(total=st.integers(1, 200), data=st.data())
    @settings(max_examples=100)
    def test_invariants(self, total, data):
        arrivals = data.draw(
            st.lists(st.integers(0, total - 1), max_size=3 * total)
        )
        tracker = ReceiverTracker(total)
        new_count = sum(tracker.add(seq) for seq in arrivals)
        # received + missing partition the sequence space.
        assert tracker.received_count + len(tracker.missing()) == total
        assert new_count == tracker.received_count == len(set(arrivals))
        assert tracker.duplicates == len(arrivals) - len(set(arrivals))
        assert tracker.is_complete == (set(arrivals) == set(range(total)))
        missing = tracker.missing()
        assert list(missing) == sorted(missing)
        if missing:
            assert tracker.first_missing == missing[0]
