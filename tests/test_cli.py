"""Tests for the command-line interface."""

import threading

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_size_suffixes(self):
        parser = build_parser()
        assert parser.parse_args(["compare", "--size", "64K"]).size == 65536
        assert parser.parse_args(["compare", "--size", "2M"]).size == 2 * 1024 * 1024
        assert parser.parse_args(["compare", "--size", "100"]).size == 100

    def test_bad_size_rejected(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["compare", "--size", "banana"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "9"])

    def test_global_jobs_flag(self):
        parser = build_parser()
        assert parser.parse_args(["figure", "5"]).jobs == 1
        assert parser.parse_args(["--jobs", "4", "figure", "5"]).jobs == 4
        assert parser.parse_args(["--jobs", "-1", "compare"]).jobs == -1

    def test_regen_flags(self):
        parser = build_parser()
        args = parser.parse_args(["regen"])
        assert args.regen_jobs is None and not args.no_cache
        args = parser.parse_args(["regen", "--jobs", "2", "--no-cache"])
        assert args.regen_jobs == 2 and args.no_cache


class TestCompare:
    def test_error_free_compare(self, capsys):
        assert main(["compare", "--size", "16K"]) == 0
        out = capsys.readouterr().out
        assert "stop_and_wait" in out
        assert "blast" in out
        assert "True" in out

    def test_stochastic_compare(self, capsys):
        assert main(
            ["compare", "--size", "8K", "--error-p", "0.01", "--runs", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "blast" in out

    def test_stochastic_compare_jobs_invariant(self, capsys):
        argv = ["compare", "--size", "8K", "--error-p", "0.01", "--runs", "4"]
        assert main(argv) == 0
        sequential = capsys.readouterr().out
        assert main(["--jobs", "2"] + argv) == 0
        assert capsys.readouterr().out == sequential

    def test_vkernel_params(self, capsys):
        assert main(["compare", "--size", "1K", "--params", "vkernel"]) == 0
        out = capsys.readouterr().out
        assert "5.89" in out  # T0(1) anchor


class TestArtifacts:
    @pytest.mark.parametrize("number,marker", [
        ("1", "Table 1"), ("2", "Table 2"), ("3", "Table 3"),
    ])
    def test_tables(self, capsys, number, marker):
        assert main(["table", number]) == 0
        assert marker in capsys.readouterr().out

    @pytest.mark.parametrize("number,marker", [
        ("3", "Figure 3"), ("4", "Figure 4"), ("5", "Figure 5"),
    ])
    def test_figures(self, capsys, number, marker):
        assert main(["figure", number]) == 0
        assert marker in capsys.readouterr().out

    def test_timeline(self, capsys):
        assert main(["timeline", "--protocol", "blast", "--packets", "2"]) == 0
        out = capsys.readouterr().out
        assert "#" in out and "=" in out


class TestMoveTo:
    def test_moveto_intact(self, capsys):
        assert main(["moveto", "--size", "4K"]) == 0
        assert "intact=True" in capsys.readouterr().out

    def test_moveto_with_errors(self, capsys):
        assert main(["moveto", "--size", "16K", "--error-p", "0.02",
                     "--strategy", "selective"]) == 0
        assert "intact=True" in capsys.readouterr().out


class TestUdp:
    def test_cli_recv_and_send(self, capsys):
        """Both CLI ends against each other, receiver in a thread."""
        import socket

        # Reserve a port by binding then closing (small race, fine here).
        probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        codes = {}

        def recv():
            codes["recv"] = main(["udp", "recv", "--port", str(port)])

        thread = threading.Thread(target=recv, daemon=True)
        thread.start()
        import time

        time.sleep(0.2)  # let the receiver bind
        codes["send"] = main(["udp", "send", f"127.0.0.1:{port}",
                              "--size", "4K"])
        thread.join(timeout=30)
        assert codes == {"recv": 0, "send": 0}
        out = capsys.readouterr().out
        assert "received 4096 bytes" in out
        assert "sent 4096 bytes" in out

    def test_send_recv_round_trip(self, capsys):
        from repro.udpnet import BlastReceiver

        # Bind the receiver ourselves to learn the port, then drive the
        # CLI sender against it.
        with BlastReceiver() as receiver:
            host, port = receiver.address
            box = {}

            def serve():
                box["outcome"] = receiver.serve_one()

            thread = threading.Thread(target=serve, daemon=True)
            thread.start()
            code = main([
                "udp", "send", f"{host}:{port}", "--size", "8K",
                "--strategy", "selective",
            ])
            thread.join(timeout=30)
        assert code == 0
        assert box["outcome"].payload_bytes == 8192
        assert "sent 8192 bytes" in capsys.readouterr().out
