"""Cross-validation: the discrete-event engines against the closed forms.

The paper derives its elapsed-time formulas *from* the timing diagrams
(Figure 3); our DES executes those diagrams mechanistically.  Agreement
here means the copy/transmit/ack pipeline is modelled exactly as the
paper describes it — the strongest internal-consistency check the
reproduction has.
"""

import pytest

from repro.analysis import (
    network_utilization,
    t_blast,
    t_double_buffered,
    t_single_exchange,
    t_sliding_window,
    t_stop_and_wait,
)
from repro.core import run_transfer
from repro.simnet import NetworkParams


def data_of(n_packets: int) -> bytes:
    return bytes(n_packets * 1024)


PARAM_SETS = {
    "standalone": NetworkParams.standalone(),
    "standalone_observed": NetworkParams.standalone(observed=True),
    "vkernel": NetworkParams.vkernel(),
    "no_propagation": NetworkParams.standalone(propagation_delay_s=0.0),
}


class TestExactAgreement:
    @pytest.mark.parametrize("params_name", sorted(PARAM_SETS))
    @pytest.mark.parametrize("n", [1, 4, 16, 64])
    def test_stop_and_wait_exact(self, params_name, n):
        params = PARAM_SETS[params_name]
        result = run_transfer("stop_and_wait", data_of(n), params=params)
        assert result.elapsed_s == pytest.approx(
            t_stop_and_wait(n, params), rel=1e-12
        )

    @pytest.mark.parametrize("params_name", sorted(PARAM_SETS))
    @pytest.mark.parametrize("n", [1, 4, 16, 64])
    def test_blast_exact(self, params_name, n):
        params = PARAM_SETS[params_name]
        result = run_transfer("blast", data_of(n), params=params)
        assert result.elapsed_s == pytest.approx(t_blast(n, params), rel=1e-12)

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_double_buffered_blast_exact(self, n):
        params = NetworkParams.standalone().with_double_buffering()
        result = run_transfer("blast", data_of(n), params=params)
        assert result.elapsed_s == pytest.approx(
            t_double_buffered(n, params), rel=1e-12
        )

    def test_blast_strategies_identical_when_error_free(self):
        """Without losses, every retransmission strategy costs the same."""
        times = {
            strategy: run_transfer(
                "blast", data_of(16), strategy=strategy
            ).elapsed_s
            for strategy in ("full_no_nak", "full_nak", "gobackn", "selective")
        }
        assert len(set(times.values())) == 1


class TestSlidingWindowAgreement:
    """SW's constant term depends on exactly how the final ack interleaves
    with the tail of the pipeline; the paper's own derivation is a reading
    of Figure 3.c.  We require the per-packet slope to be *exact* and the
    constant to agree within one ack-copy time."""

    def test_slope_exact(self):
        params = NetworkParams.standalone()
        t16 = run_transfer("sliding_window", data_of(16), params=params).elapsed_s
        t48 = run_transfer("sliding_window", data_of(48), params=params).elapsed_s
        slope = (t48 - t16) / 32
        expected = params.copy_data_s + params.copy_ack_s + params.transmit_data_s
        assert slope == pytest.approx(expected, rel=1e-12)

    @pytest.mark.parametrize("n", [4, 16, 64])
    def test_total_within_one_ack_copy(self, n):
        params = NetworkParams.standalone()
        result = run_transfer("sliding_window", data_of(n), params=params)
        assert result.elapsed_s == pytest.approx(
            t_sliding_window(n, params), abs=params.copy_ack_s + 1e-9
        )


class TestPaperHeadlines:
    """The measured phenomena the paper leads with, reproduced end-to-end."""

    def test_saw_takes_about_twice_blast(self):
        saw = run_transfer("stop_and_wait", data_of(64)).elapsed_s
        blast = run_transfer("blast", data_of(64)).elapsed_s
        assert 1.6 < saw / blast < 2.0

    def test_naive_wire_only_model_underestimates_by_2_5x(self):
        """§2.1's point: wire-time arithmetic predicts ~57 ms for 64 KB
        stop-and-wait; reality (copies included) is ~250 ms."""
        params = NetworkParams.standalone()
        naive = 64 * (
            params.transmit_data_s
            + params.transmit_ack_s
            + 2 * params.propagation_delay_s
        )
        measured = run_transfer("stop_and_wait", data_of(64)).elapsed_s
        assert naive == pytest.approx(57e-3, abs=1e-3)
        assert measured / naive > 4

    def test_one_packet_exchange_anchors(self):
        accounted = run_transfer(
            "stop_and_wait", data_of(1),
            params=NetworkParams.standalone(propagation_delay_s=0.0),
        ).elapsed_s
        observed = run_transfer(
            "stop_and_wait", data_of(1),
            params=NetworkParams.standalone(observed=True, propagation_delay_s=0.0),
        ).elapsed_s
        assert accounted == pytest.approx(3.91e-3, abs=1e-5)
        assert observed == pytest.approx(4.08e-3, abs=1e-5)

    def test_vkernel_moveto_anchors(self):
        """T0(1) = 5.9 ms and T0(64) = 173 ms (paper Table 3 / Figure 5)."""
        params = NetworkParams.vkernel()
        t1 = run_transfer("blast", data_of(1), params=params).elapsed_s
        t64 = run_transfer("blast", data_of(64), params=params).elapsed_s
        assert t1 == pytest.approx(5.9e-3, abs=0.05e-3)
        assert t64 == pytest.approx(173e-3, abs=1e-3)

    def test_wire_utilization_about_38_percent(self):
        """Measured on the simulated medium, not just the formula."""
        from repro.sim import Environment
        from repro.simnet import make_lan
        from repro.core import BlastTransfer

        env = Environment()
        sender, receiver, medium = make_lan(env, NetworkParams.standalone())
        transfer = BlastTransfer(env, sender, receiver, data_of(64))
        result_proc = transfer.launch()
        env.run(until=result_proc)
        wire_busy = (
            64 * sender.params.transmit_data_s + sender.params.transmit_ack_s
        )
        utilization = wire_busy / env.now
        assert utilization == pytest.approx(0.38, abs=0.01)
        assert utilization == pytest.approx(
            network_utilization(64, sender.params), rel=1e-6
        )

    def test_triple_vs_double_buffering_no_gain(self):
        double = run_transfer(
            "blast", data_of(32),
            params=NetworkParams.standalone(tx_buffers=2, busy_wait=False),
        ).elapsed_s
        triple = run_transfer(
            "blast", data_of(32),
            params=NetworkParams.standalone(tx_buffers=3, busy_wait=False),
        ).elapsed_s
        assert triple == pytest.approx(double, rel=1e-12)

    def test_single_exchange_formula_matches_engine(self):
        params = NetworkParams.vkernel()
        engine = run_transfer("blast", data_of(1), params=params).elapsed_s
        assert engine == pytest.approx(t_single_exchange(params), rel=1e-12)
