"""Property-based tests: every engine delivers intact data under any
scripted loss pattern (within termination bounds).

These drive the full DES stack — hosts, medium, engines — with
hypothesis-chosen drop patterns, the strongest "no corner case left"
statement the reproduction makes about the protocol implementations.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import run_transfer
from repro.simnet import DeterministicDrops, NetworkParams

PARAMS = NetworkParams.standalone()

# Small transfers keep hypothesis fast; drop indices cover several rounds.
drop_pattern = st.sets(st.integers(0, 25), max_size=8)


def payload(n_packets: int) -> bytes:
    return bytes((i * 37) % 256 for i in range(n_packets * 1024))


class TestLossPatternConvergence:
    @given(drops=drop_pattern, n=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_stop_and_wait_delivers(self, drops, n):
        data = payload(n)
        result = run_transfer(
            "stop_and_wait", data, params=PARAMS,
            error_model=DeterministicDrops(drops),
        )
        assert result.data_intact
        assert result.data == data

    @given(drops=drop_pattern, n=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_sliding_window_delivers(self, drops, n):
        data = payload(n)
        result = run_transfer(
            "sliding_window", data, params=PARAMS,
            error_model=DeterministicDrops(drops),
        )
        assert result.data_intact

    @given(
        drops=drop_pattern,
        n=st.integers(1, 6),
        strategy=st.sampled_from(
            ["full_no_nak", "full_nak", "gobackn", "selective"]
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_blast_delivers_under_all_strategies(self, drops, n, strategy):
        data = payload(n)
        result = run_transfer(
            "blast", data, params=PARAMS, strategy=strategy,
            error_model=DeterministicDrops(drops),
        )
        assert result.data_intact
        assert result.data == data
        # Conservation: at least one frame per packet was sent, and
        # every retransmitted frame is accounted for.
        assert result.stats.data_frames_sent >= n
        assert (
            result.stats.data_frames_sent
            == n + result.stats.retransmitted_data_frames
        )

    @given(drops=drop_pattern, n=st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_multiblast_delivers(self, drops, n):
        data = payload(n)
        result = run_transfer(
            "multiblast", data, params=PARAMS, blast_packets=3,
            strategy="selective", error_model=DeterministicDrops(drops),
        )
        assert result.data_intact
        assert result.data == data

    @given(
        drops=drop_pattern,
        strategy=st.sampled_from(["gobackn", "selective"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_selective_never_sends_more_than_gobackn(self, drops, strategy):
        """Work ordering under identical loss scripts: selective's frame
        count is a lower bound for go-back-n's, which lower-bounds full."""
        data = payload(5)
        counts = {}
        for s in ("selective", "gobackn", "full_nak"):
            result = run_transfer(
                "blast", data, params=PARAMS, strategy=s,
                error_model=DeterministicDrops(drops),
            )
            assert result.data_intact
            counts[s] = result.stats.data_frames_sent
        assert counts["selective"] <= counts["gobackn"] + 2
        # (+2 slack: reliable-last retries can differ by a frame when the
        # loss script hits different wire positions across strategies.)
