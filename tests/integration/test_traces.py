"""Trace-level validation of the copy-overlap mechanism (paper Figure 3)
and the Table 2 component breakdown."""

import pytest

from repro.core import run_transfer
from repro.simnet import Activity, NetworkParams, TraceRecorder

N = 8
DATA = bytes(N * 1024)
PARAMS = NetworkParams.standalone(propagation_delay_s=0.0)


def traced_run(protocol, params=PARAMS, data=DATA, **kwargs):
    trace = TraceRecorder()
    result = run_transfer(protocol, data, params=params, trace=trace, **kwargs)
    return result, trace


class TestCopyOverlap:
    """The quantitative heart of the paper: blast and sliding window run
    the two processors' copies in parallel; stop-and-wait never does."""

    def test_stop_and_wait_has_zero_overlap(self):
        _, trace = traced_run("stop_and_wait")
        assert trace.copy_overlap("sender", "receiver") == pytest.approx(0.0)

    def test_blast_overlap_is_n_minus_one_copies(self):
        """Each of the receiver's first N-1 copy-outs fully overlaps the
        sender's next copy-in (copy-out starts when copy-in does, both
        last C)."""
        _, trace = traced_run("blast")
        expected = (N - 1) * PARAMS.copy_data_s
        assert trace.copy_overlap("sender", "receiver") == pytest.approx(
            expected, rel=0.05
        )

    def test_sliding_window_overlap_substantial(self):
        _, trace = traced_run("sliding_window")
        overlap = trace.copy_overlap("sender", "receiver")
        assert overlap > (N - 2) * PARAMS.copy_data_s

    def test_blast_busy_times_balanced(self):
        """Sender and receiver do symmetric work in a blast: N data copies
        plus one ack copy each."""
        _, trace = traced_run("blast")
        expected = N * PARAMS.copy_data_s + PARAMS.copy_ack_s
        assert trace.busy_time("sender") == pytest.approx(expected, rel=1e-9)
        assert trace.busy_time("receiver") == pytest.approx(expected, rel=1e-9)

    def test_ascii_timeline_renders(self):
        _, trace = traced_run("blast", data=bytes(3 * 1024))
        art = trace.render_ascii(width=60)
        assert "sender copy_in" in art
        assert "receiver copy_out" in art


class TestTable2Breakdown:
    """Regenerate the paper's Table 2: the cost components of a 1-packet
    exchange, measured from the simulation trace."""

    def test_components(self):
        _, trace = traced_run("stop_and_wait", data=bytes(1024))
        sender_copy_in = trace.total_time(Activity.COPY_IN, "sender")
        receiver_copy_out = trace.total_time(Activity.COPY_OUT, "receiver")
        receiver_copy_in = trace.total_time(Activity.COPY_IN, "receiver")
        sender_copy_out = trace.total_time(Activity.COPY_OUT, "sender")
        transmits = trace.by_kind(Activity.TRANSMIT)
        data_tx = [s for s in transmits if s.actor == "sender"]
        ack_tx = [s for s in transmits if s.actor == "receiver"]
        # Paper Table 2 rows (ms): 1.35, 0.82, 1.35, 0.17, 0.05, 0.17.
        assert sender_copy_in == pytest.approx(1.35e-3, abs=1e-5)
        assert data_tx[0].duration == pytest.approx(0.82e-3, abs=1e-5)
        assert receiver_copy_out == pytest.approx(1.35e-3, abs=1e-5)
        assert receiver_copy_in == pytest.approx(0.17e-3, abs=1e-5)
        assert ack_tx[0].duration == pytest.approx(0.05e-3, abs=1e-5)
        assert sender_copy_out == pytest.approx(0.17e-3, abs=1e-5)

    def test_total_matches_sum_of_components(self):
        result, trace = traced_run("stop_and_wait", data=bytes(1024))
        total = sum(trace.breakdown().values())
        assert result.elapsed_s == pytest.approx(total, rel=1e-9)

    def test_copying_is_three_quarters_of_elapsed_time(self):
        """Paper: 'only 21 percent is network transmission time, while 75
        percent is copying overhead'."""
        result, trace = traced_run("stop_and_wait", data=bytes(1024))
        copying = trace.busy_time("sender") + trace.busy_time("receiver")
        transmitting = trace.total_time(Activity.TRANSMIT)
        assert copying / result.elapsed_s == pytest.approx(0.78, abs=0.03)
        assert transmitting / result.elapsed_s == pytest.approx(0.22, abs=0.03)


class TestDropTracing:
    def test_channel_loss_recorded(self):
        from repro.simnet import DeterministicDrops

        trace = TraceRecorder()
        result = run_transfer(
            "blast", DATA, params=PARAMS, trace=trace,
            error_model=DeterministicDrops([2]), strategy="gobackn",
        )
        assert result.data_intact
        drops = trace.drops()
        assert len(drops) == 1
        assert drops[0].note == "channel loss"
        assert drops[0].actor == "receiver"
