"""Stochastic cross-validation: DES engines vs Monte Carlo vs closed forms.

Three independently built models of the same protocols — the mechanistic
discrete-event engines, the paper-style abstract Monte Carlo, and the
closed forms — must agree on means (and qualitatively on spreads).
"""

import pytest

from repro.analysis import (
    expected_time_blast,
    expected_time_saw,
    run_trials,
    t_blast,
    t_single_exchange,
)
from repro.core import run_many
from repro.simnet import NetworkParams

PARAMS = NetworkParams.standalone()
D = 16
DATA = bytes(D * 1024)


class TestBlastFullRetransmission:
    def test_des_mean_matches_closed_form(self):
        """DES blast/full_no_nak vs E[T] = T0 + (T0+Tr) pc/(1-pc).

        The closed form assumes rounds are independent (no cross-round
        accumulation at the receiver); for full retransmission the DES
        receiver does accumulate, which can only make it slightly faster.
        """
        pn = 0.01
        t0 = t_blast(D, PARAMS)
        tr = t0  # engine default timeout equals T0(D)
        des = run_many(
            "blast", DATA, error_p=pn, n_runs=150, seed=11,
            params=PARAMS, strategy="full_no_nak",
        )
        predicted = expected_time_blast(D, t0, tr, pn)
        assert des.all_intact
        assert des.mean_s == pytest.approx(predicted, rel=0.15)
        assert des.mean_s <= predicted * 1.05  # accumulation helps, not hurts

    def test_des_matches_montecarlo_gobackn(self):
        pn = 0.01
        des = run_many(
            "blast", DATA, error_p=pn, n_runs=150, seed=12,
            params=PARAMS, strategy="gobackn",
        )
        mc = run_trials(
            "gobackn", D, pn, n_trials=20_000,
            t_retry=t_blast(D, PARAMS), params=PARAMS, seed=12,
            t_retry_last=t_single_exchange(PARAMS),
        )
        assert des.mean_s == pytest.approx(mc.mean_s, rel=0.05)

    def test_des_matches_montecarlo_selective(self):
        pn = 0.01
        des = run_many(
            "blast", DATA, error_p=pn, n_runs=150, seed=13,
            params=PARAMS, strategy="selective",
        )
        mc = run_trials(
            "selective", D, pn, n_trials=20_000,
            t_retry=t_blast(D, PARAMS), params=PARAMS, seed=13,
            t_retry_last=t_single_exchange(PARAMS),
        )
        assert des.mean_s == pytest.approx(mc.mean_s, rel=0.05)


class TestStopAndWaitUnderLoss:
    def test_des_mean_matches_closed_form(self):
        pn = 0.01
        t0 = t_single_exchange(PARAMS)
        des = run_many(
            "stop_and_wait", DATA, error_p=pn, n_runs=150, seed=14, params=PARAMS,
        )
        predicted = expected_time_saw(D, t0, t0, pn)  # engine default Tr = T0(1)
        assert des.all_intact
        assert des.mean_s == pytest.approx(predicted, rel=0.1)


class TestSigmaOrderingEndToEnd:
    def test_figure6_ordering_reproduced_by_des(self):
        """The paper's Figure 6 conclusion, from the mechanistic engines:
        sigma(full_no_nak) > sigma(full_nak) >= sigma(gobackn) >= ~sigma(selective)."""
        pn = 5e-3
        sigmas = {}
        for strategy in ("full_no_nak", "full_nak", "gobackn", "selective"):
            summary = run_many(
                "blast", bytes(32 * 1024), error_p=pn, n_runs=200,
                seed=15, params=PARAMS, strategy=strategy,
            )
            assert summary.all_intact
            sigmas[strategy] = summary.std_s
        assert sigmas["full_no_nak"] > sigmas["full_nak"]
        assert sigmas["full_nak"] > sigmas["gobackn"]
        assert sigmas["selective"] < sigmas["full_no_nak"] / 3

    def test_means_all_near_error_free_at_lan_rates(self):
        """§3 premise at the DES level: at p_n = 1e-4 every strategy's
        expected time is within a few percent of the error-free time."""
        t0 = t_blast(32, PARAMS)
        for strategy in ("full_no_nak", "full_nak", "gobackn", "selective"):
            summary = run_many(
                "blast", bytes(32 * 1024), error_p=1e-4, n_runs=100,
                seed=16, params=PARAMS, strategy=strategy,
            )
            assert summary.mean_s == pytest.approx(t0, rel=0.05)
