"""Multi-host network tests: concurrent transfers, shared-wire fairness,
and multi-client kernel IPC."""

import pytest

from repro.core import BlastTransfer, run_transfer
from repro.sim import Environment
from repro.simnet import NetworkParams, make_network
from repro.vkernel import FileClient, FileServer, VKernel

PARAMS = NetworkParams.standalone()


def concurrent_blasts(n_pairs: int, n_packets: int = 16):
    """Run n_pairs disjoint simultaneous blasts on one wire."""
    env = Environment()
    names = [f"h{i}" for i in range(2 * n_pairs)]
    hosts, medium = make_network(env, names, PARAMS)
    transfers = []
    for pair in range(n_pairs):
        sender, receiver = hosts[2 * pair], hosts[2 * pair + 1]
        data = bytes(((pair + 1) * 13) % 256 for _ in range(n_packets * 1024))
        transfers.append(
            BlastTransfer(env, sender, receiver, data, transfer_id=pair + 1)
        )
    done = [t.launch() for t in transfers]
    env.run(env.all_of(done))
    return [t.result() for t in transfers], medium


class TestMakeNetwork:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            make_network(env, ["only"])
        with pytest.raises(ValueError):
            make_network(env, ["a", "a"])

    def test_hosts_share_one_medium(self):
        env = Environment()
        hosts, medium = make_network(env, ["a", "b", "c"])
        assert len(hosts) == 3
        assert all(h.interface.medium is medium for h in hosts)


class TestConcurrentTransfers:
    def test_two_pairs_both_intact(self):
        results, _ = concurrent_blasts(2)
        assert all(r.data_intact for r in results)

    def test_two_pairs_barely_slow_each_other(self):
        """The wire is only ~38 % utilised per blast, so two concurrent
        blasts interleave in each other's copy gaps almost for free."""
        solo = run_transfer("blast", bytes(16 * 1024), params=PARAMS).elapsed_s
        results, _ = concurrent_blasts(2)
        for result in results:
            assert result.elapsed_s < solo * 1.10

    def test_three_pairs_saturate_the_wire(self):
        """Three blasts demand ~114 % of the wire: now they must slow."""
        solo = run_transfer("blast", bytes(16 * 1024), params=PARAMS).elapsed_s
        results, medium = concurrent_blasts(3)
        assert all(r.data_intact for r in results)
        slowest = max(r.elapsed_s for r in results)
        assert slowest > solo * 1.05
        # And the wire is now nearly saturated for the duration.
        wire_busy = 3 * 16 * PARAMS.transmit_data_s
        assert wire_busy / slowest > 0.85

    def test_fairness_no_starvation(self):
        """Carrier-sense FIFO shares the wire evenly: at equal demand the
        completion-time spread across pairs stays small."""
        results, _ = concurrent_blasts(3)
        times = sorted(r.elapsed_s for r in results)
        assert times[-1] / times[0] < 1.2

    def test_concurrent_transfers_to_one_receiver(self):
        """Two senders blasting the *same* receiver: transfer-id demux
        keeps the streams apart; the shared receiver CPU serialises them."""
        env = Environment()
        hosts, _ = make_network(env, ["s1", "s2", "sink"], PARAMS)
        s1, s2, sink = hosts
        data1 = bytes(8 * 1024)
        data2 = bytes([7]) * (8 * 1024)
        t1 = BlastTransfer(env, s1, sink, data1, transfer_id=1)
        t2 = BlastTransfer(env, s2, sink, data2, transfer_id=2)
        done = [t1.launch(), t2.launch()]
        env.run(env.all_of(done))
        assert t1.result().data == data1
        assert t2.result().data == data2


class TestMultiClientFileServer:
    def test_two_clients_one_server(self):
        env = Environment()
        hosts, _ = make_network(
            env, ["server", "client1", "client2"], NetworkParams.vkernel()
        )
        server_host, c1_host, c2_host = hosts
        server_kernel = VKernel(env, server_host, kernel_id=1)
        k1 = VKernel(env, c1_host, kernel_id=2)
        k2 = VKernel(env, c2_host, kernel_id=3)
        files = {"shared.bin": bytes(range(256)) * 64}
        server = FileServer(server_kernel, files=files)
        client1 = FileClient(k1, server.ref, name="c1")
        client2 = FileClient(k2, server.ref, name="c2")
        out = {}

        def reader(tag, client):
            data = yield from client.read_file("shared.bin", 16 * 1024)
            out[tag] = data

        p1 = env.process(reader("c1", client1))
        p2 = env.process(reader("c2", client2))
        env.run(env.all_of([p1, p2]))
        assert out["c1"] == files["shared.bin"]
        assert out["c2"] == files["shared.bin"]
        assert server.requests_served == 2
