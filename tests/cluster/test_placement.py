"""Rendezvous-hash placement: deterministic, balanced, minimally moving."""

from repro.cluster import partition_streams, servers_for_streams, shard_for_stream


def test_mapping_is_deterministic_and_in_range():
    for n_shards in (1, 2, 7, 64):
        for stream_id in range(1, 200):
            shard = shard_for_stream(stream_id, n_shards, seed=3)
            assert 0 <= shard < n_shards
            assert shard == shard_for_stream(stream_id, n_shards, seed=3)


def test_seed_changes_the_mapping():
    mapping_a = [shard_for_stream(s, 8, seed=0) for s in range(1, 300)]
    mapping_b = [shard_for_stream(s, 8, seed=1) for s in range(1, 300)]
    assert mapping_a != mapping_b


def test_partition_is_roughly_balanced_and_complete():
    streams = range(1, 1025)
    groups = partition_streams(streams, 8)
    assert sorted(s for group in groups for s in group) == list(streams)
    sizes = [len(group) for group in groups]
    # Binomial(1024, 1/8): mean 128, std ~10.6 — a 4-sigma band.
    assert all(85 <= size <= 171 for size in sizes), sizes


def test_rendezvous_moves_only_to_the_new_shard():
    # Growing N -> N+1 must never move a stream between *old* shards:
    # either it keeps its shard or it lands on the new one.  This is
    # the consistency property that makes resharding cheap.
    for stream_id in range(1, 500):
        old = shard_for_stream(stream_id, 8)
        new = shard_for_stream(stream_id, 9)
        assert new == old or new == 8


def test_servers_for_streams_uses_the_hash():
    addresses = [("127.0.0.1", 9000 + shard) for shard in range(4)]
    streams = list(range(1, 33))
    servers = servers_for_streams(streams, addresses)
    for stream_id, server in zip(streams, servers):
        assert server == addresses[shard_for_stream(stream_id, 4)]
