"""Property tests: the shard-report merge is order-invariant + associative."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterReport,
    ShardReport,
    canonical_from_report,
    merge_shards,
)

# -- synthetic shard reports -------------------------------------------------

def make_shard_report(shard: int, rows, rejections=(), status: str = "ok"):
    """Build a ServiceMetrics-shaped report dict for one shard.

    ``rows``: (stream, ok, bytes, completion_s) tuples with shard-unique
    stream ids (the generator assigns disjoint id ranges per shard).
    """
    transfers = [
        {
            "stream": stream,
            "client": f"client{stream:03d}",
            "ok": ok,
            "bytes": size if ok else 0,
            "packets": max(1, size // 1024) if ok else 0,
            "data_frames": max(1, size // 1024) if ok else 0,
            "retransmits": 0,
            "rounds": 1,
            "submitted_s": 0.0,
            "started_s": 0.0,
            "finished_s": completion,
            "completion_s": completion,
            "queue_wait_s": 0.0,
            "error": "" if ok else "stalled",
        }
        for stream, ok, size, completion in rows
    ]
    ok_rows = [r for r in transfers if r["ok"]]
    report = {
        "schema_version": 1,
        "config": {"protocol": "blast"},
        "summary": {
            "transfers": len(transfers),
            "ok": len(ok_rows),
            "failed": len(transfers) - len(ok_rows),
            "rejected": len(rejections),
            "bytes": sum(r["bytes"] for r in ok_rows),
            "data_frames": sum(r["data_frames"] for r in transfers),
            "retransmits": 0,
            "p50_completion_s": 0.0,
            "p99_completion_s": 0.0,
            "mean_completion_s": 0.0,
            "makespan_s": max(
                (r["completion_s"] for r in transfers), default=0.0
            ),
            "goodput_bytes_per_s": 0.0,
            "max_queue_depth": len(transfers),
        },
        "transfers": transfers,
        "rejections": [
            {"stream": stream, "client": f"client{stream:03d}",
             "reason": reason, "at_s": 0.0}
            for stream, reason in rejections
        ],
        "queue_depth": [],
    }
    return ShardReport(shard=shard, status=status, report=report,
                       canonical=canonical_from_report(report))


row_strategy = st.tuples(
    st.booleans(),                                  # ok
    st.integers(min_value=0, max_value=1 << 20),    # bytes
    st.floats(min_value=0.0, max_value=100.0,
              allow_nan=False, allow_infinity=False),  # completion_s
)

shards_strategy = st.lists(
    st.lists(row_strategy, min_size=0, max_size=6),
    min_size=1, max_size=5,
)


def build_shards(shard_rows):
    """Assign disjoint global stream-id ranges across the shard specs."""
    reports = []
    next_stream = 1
    for shard, rows in enumerate(shard_rows):
        keyed = []
        for ok, size, completion in rows:
            keyed.append((next_stream, ok, size, completion))
            next_stream += 1
        reports.append(make_shard_report(shard, keyed))
    return reports


@settings(max_examples=60, deadline=None)
@given(shard_rows=shards_strategy, data=st.data())
def test_merge_is_order_invariant(shard_rows, data):
    reports = build_shards(shard_rows)
    shuffled = data.draw(st.permutations(reports))
    merged = merge_shards(reports)
    merged_shuffled = merge_shards(shuffled)
    assert merged.to_json() == merged_shuffled.to_json()
    assert merged.canonical_json() == merged_shuffled.canonical_json()


@settings(max_examples=60, deadline=None)
@given(shard_rows=shards_strategy, splits=st.data())
def test_merge_is_associative(shard_rows, splits):
    reports = build_shards(shard_rows)
    cut_a = splits.draw(st.integers(0, len(reports)))
    cut_b = splits.draw(st.integers(cut_a, len(reports)))
    a = merge_shards(reports[:cut_a])
    b = merge_shards(reports[cut_a:cut_b])
    c = merge_shards(reports[cut_b:])
    left = a.merge(b).merge(c)
    right = a.merge(b.merge(c))
    assert left.to_json() == right.to_json()
    assert left.canonical_json() == right.canonical_json()
    # And both equal the one-shot fold.
    assert left.to_json() == merge_shards(reports).to_json()


def test_duplicate_shard_is_rejected():
    a = make_shard_report(0, [(1, True, 1024, 0.5)])
    b = make_shard_report(0, [(2, True, 1024, 0.5)])
    with pytest.raises(ValueError, match="duplicate shard"):
        merge_shards([a, b])
    with pytest.raises(ValueError, match="duplicate shard"):
        merge_shards([a]).merge(merge_shards([b]))


def test_summary_aggregates_counts_and_percentiles():
    shards = build_shards([
        [(True, 1024, 0.25), (True, 2048, 0.5)],
        [(True, 4096, 1.0), (False, 512, 2.0)],
    ])
    summary = merge_shards(shards).summary()
    assert summary["shards"] == 2
    assert summary["transfers"] == 4
    assert summary["ok"] == 3
    assert summary["failed"] == 1
    assert summary["bytes"] == 1024 + 2048 + 4096
    # Makespan is the slowest shard; percentiles pool ok completions.
    assert summary["makespan_s"] == 2.0
    assert summary["p50_completion_s"] == 0.5
    assert summary["p99_completion_s"] == 1.0


def test_degraded_shard_is_counted_but_not_summed():
    healthy = make_shard_report(0, [(1, True, 1024, 0.5)])
    dead = ShardReport(shard=1, status="degraded")
    report = merge_shards([healthy, dead])
    summary = report.summary()
    assert summary["degraded"] == 1
    assert summary["ok"] == 1
    rows = report.to_dict()["shards"]
    assert rows[1] == {"shard": 1, "status": "degraded"}
    assert report.canonical_dict()["summary"]["degraded"] == 1


def test_cluster_report_json_is_loadable_and_versioned():
    report = merge_shards(build_shards([[(True, 1024, 0.5)]]))
    payload = json.loads(report.to_json())
    assert payload["schema_version"] == 1
    assert ClusterReport().to_dict()["summary"]["shards"] == 0
