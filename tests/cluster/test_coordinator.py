"""Multi-process cluster coordinator: loopback runs, failure handling.

The acceptance run is a 2-worker loopback cluster with 8 clients under
the builtin ``dup+reorder`` fault plan — every payload byte-verified
client-side, merged canonical report byte-identical across runs.  The
failure tests kill a worker mid-serve and pin the degraded/restart
contract: the merged report must say what happened instead of hanging.
"""

import json

import pytest

from repro.cluster import (
    ClusterCoordinator,
    reuseport_available,
    run_udp_cluster,
)
from repro.faults.plans import builtin_plan
from repro.service.engine import ServiceConfig
from repro.service.udpservice import UdpServiceClient


def _config(**overrides):
    defaults = dict(protocol="sliding", policy="rr",
                    max_active=8, max_queue=64)
    defaults.update(overrides)
    return ServiceConfig(**defaults)


class TestClusterLoadgen:
    def test_8_clients_verified_under_dup_reorder(self):
        # Acceptance: per-shard payload verification passes with every
        # shard replaying the dup+reorder plan (seed mixed per shard).
        result = run_udp_cluster(
            workers=2, clients=8, config=_config(),
            fault_plan=builtin_plan("dup+reorder"), fault_seed=11,
            size_bytes=8192, duration_s=45.0,
        )
        assert result.all_ok, {
            s: (p.status, p.error)
            for s, p in result.pulls.items() if not p.ok
        }
        summary = result.report.summary()
        assert summary["shards"] == 2
        assert summary["ok"] == 8 and summary["failed"] == 0
        canonical = result.report.canonical_dict()
        assert [t["stream"] for t in canonical["transfers"]] \
            == list(range(1, 9))

    def test_merged_canonical_report_is_byte_identical_across_runs(self):
        runs = [
            run_udp_cluster(workers=2, clients=8, config=_config(),
                            size_bytes=4096, duration_s=30.0)
            for _ in range(2)
        ]
        assert all(run.all_ok for run in runs)
        assert runs[0].report.canonical_json() \
            == runs[1].report.canonical_json()
        payload = json.loads(runs[0].report.to_json())
        assert payload["schema_version"] == 1

    @pytest.mark.skipif(not reuseport_available(),
                        reason="SO_REUSEPORT not available")
    def test_reuseport_placement_serves_all_clients(self):
        result = run_udp_cluster(
            workers=2, clients=8, config=_config(),
            placement="reuseport", size_bytes=4096, duration_s=30.0,
        )
        assert result.all_ok
        assert result.placement == "reuseport"
        assert result.report.summary()["ok"] == 8


class TestFailureHandling:
    def test_killed_worker_marks_shard_degraded(self):
        # SIGKILL leaves no time to flush a report; with no restart
        # budget the shard must be marked degraded, not hang collection.
        coordinator = ClusterCoordinator(
            2, config=_config(), duration_s=30.0, restart_limit=0)
        with coordinator:
            victim = coordinator._handles[0]
            victim.process.kill()
            victim.process.join(timeout=10.0)
            acted = coordinator.check_workers()
            assert acted == [0]
            coordinator.stop()
            report = coordinator.report()
        summary = report.summary()
        assert summary["shards"] == 2 and summary["degraded"] == 1
        statuses = [row["status"] for row in report.to_dict()["shards"]]
        assert statuses == ["degraded", "ok"]

    def test_dead_worker_restarts_once_on_same_port(self):
        coordinator = ClusterCoordinator(
            2, config=_config(), duration_s=30.0, restart_limit=1)
        with coordinator:
            old_address = coordinator._handles[0].address
            coordinator._handles[0].process.kill()
            coordinator._handles[0].process.join(timeout=10.0)
            assert coordinator.check_workers() == [0]
            replacement = coordinator._handles[0]
            assert replacement.status == "restarted"
            assert replacement.restarts == 1
            # Same port: hash-placement clients reach the shard without
            # re-resolving addresses.
            assert replacement.address == old_address
            client = UdpServiceClient(replacement.address,
                                      protocol="sliding")
            try:
                pull = client.pull(1, 4096)
            finally:
                client.sock.close()
            assert pull.ok
            coordinator.stop()
            report = coordinator.report()
        statuses = [row["status"] for row in report.to_dict()["shards"]]
        assert statuses == ["restarted", "ok"]
        assert report.summary()["degraded"] == 0
        assert report.summary()["ok"] == 1

    def test_restart_budget_exhausted_degrades(self):
        coordinator = ClusterCoordinator(
            1, config=_config(), duration_s=30.0, restart_limit=1)
        with coordinator:
            for expected_status in ("restarted", "degraded"):
                handle = coordinator._handles[0]
                handle.process.kill()
                handle.process.join(timeout=10.0)
                assert coordinator.check_workers() == [0]
                assert coordinator._handles[0].status == expected_status
            coordinator.stop()
            report = coordinator.report()
        assert report.summary()["degraded"] == 1


class TestGracefulShutdown:
    def test_sigterm_yields_final_reports_without_duration(self):
        # Workers serve with no duration cap; stop() SIGTERMs them and
        # every shard must still flush its final metrics report — the
        # graceful-shutdown contract.
        coordinator = ClusterCoordinator(
            2, config=_config(), duration_s=None, restart_limit=0)
        with coordinator:
            client = UdpServiceClient(coordinator.addresses[0],
                                      protocol="sliding")
            try:
                pull = client.pull(1, 4096)
            finally:
                client.sock.close()
            assert pull.ok
            coordinator.stop()
            report = coordinator.report()
        summary = report.summary()
        assert summary["degraded"] == 0
        assert summary["shards"] == 2
        assert summary["ok"] == 1
        # Both shards flushed real reports (the idle one counts zero).
        assert all(row["status"] == "ok"
                   for row in report.to_dict()["shards"])
