"""Sharded DES cluster: global relabelling, jobs-invariance, rendering."""

import json

from repro.cluster import run_des_cluster
from repro.cluster.descluster import _render_cluster_ledger
from repro.cluster.placement import partition_streams


class TestDesCluster:
    def test_small_cluster_completes_every_flow(self):
        result = run_des_cluster(64, shard_streams=32)
        assert result.shards == 2
        assert result.all_ok
        summary = result.report.summary()
        assert summary["ok"] == 64
        assert summary["bytes"] == 64 * 1024

    def test_relabelling_restores_global_stream_ids(self):
        # Shards simulate local ids 1..K; the merged canonical report
        # must contain exactly the global ids 1..N, each once.
        result = run_des_cluster(96, shard_streams=40)
        canonical = result.report.canonical_dict()
        assert [row["stream"] for row in canonical["transfers"]] \
            == list(range(1, 97))

    def test_shard_membership_matches_rendezvous_hash(self):
        flows, shard_streams = 96, 40
        result = run_des_cluster(flows, shard_streams=shard_streams)
        groups = partition_streams(range(1, flows + 1), result.shards)
        per_shard_ok = [
            row.get("transfers")
            for row in result.report.to_dict()["shards"]
        ]
        assert per_shard_ok == [len(group) for group in groups]

    def test_report_is_byte_identical_across_job_counts(self):
        reports = [
            run_des_cluster(96, shard_streams=24, n_jobs=jobs)
            for jobs in (1, 2)
        ]
        assert reports[0].report.to_json() == reports[1].report.to_json()
        assert reports[0].report.canonical_json() \
            == reports[1].report.canonical_json()

    def test_root_seed_changes_placement_but_not_outcomes(self):
        a = run_des_cluster(64, shard_streams=32, root_seed=0)
        b = run_des_cluster(64, shard_streams=32, root_seed=1)
        # Different seeds shuffle shard membership, but every flow still
        # completes with the same byte totals.
        assert a.all_ok and b.all_ok
        assert a.report.canonical_dict()["summary"]["bytes"] \
            == b.report.canonical_dict()["summary"]["bytes"]

    def test_ledger_rendering_is_stable(self):
        cell = run_des_cluster(64, shard_streams=32)
        first = _render_cluster_ledger([cell])
        second = _render_cluster_ledger([cell])
        assert first == second
        lines = first.splitlines()
        assert lines[-1] == "# cells=1"
        row = lines[3].split()
        assert row[0] == "64" and row[1] == "2"

    def test_full_report_json_round_trips(self):
        result = run_des_cluster(64, shard_streams=32)
        payload = json.loads(result.report.to_json())
        assert payload["schema_version"] == 1
        assert payload["summary"]["shards"] == 2
