"""Tests for the deterministic experiment pool and seed sharding."""

import os

import pytest

from repro.analysis import run_trials
from repro.core import run_many
from repro.parallel import (
    DEFAULT_TRIAL_SHARD_SIZE,
    ExperimentPool,
    mix_seed,
    resolve_jobs,
    shard_counts,
)


class TestMixSeed:
    def test_deterministic(self):
        assert mix_seed(7, 3) == mix_seed(7, 3)

    def test_64_bit_range(self):
        for root in (0, 1, 2**31, 2**63):
            for index in (0, 1, 999):
                assert 0 <= mix_seed(root, index) < 2**64

    def test_no_collisions_on_grid(self):
        seen = {
            mix_seed(root, index)
            for root in range(16)
            for index in range(256)
        }
        assert len(seen) == 16 * 256

    def test_old_linear_derivation_collision_fixed(self):
        # The legacy ``seed * 1_000_003 + index`` scheme made run
        # 1_000_003 of seed 0 identical to run 0 of seed 1.
        assert mix_seed(0, 1_000_003) != mix_seed(1, 0)


class TestResolveJobs:
    def test_none_and_zero_mean_sequential(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1

    def test_positive_passthrough(self):
        assert resolve_jobs(1) == 1
        assert resolve_jobs(8) == 8

    def test_minus_one_means_all_cpus(self):
        assert resolve_jobs(-1) == (os.cpu_count() or 1)


class TestShardCounts:
    def test_exact_multiple(self):
        assert shard_counts(256, 128) == [128, 128]

    def test_remainder_shard_last(self):
        assert shard_counts(300, 128) == [128, 128, 44]

    def test_zero_items(self):
        assert shard_counts(0, 128) == []

    def test_sum_preserved(self):
        for n in (1, 127, 128, 129, 1000):
            assert sum(shard_counts(n, 128)) == n

    def test_validation(self):
        with pytest.raises(ValueError, match="n_items"):
            shard_counts(-1, 128)
        with pytest.raises(ValueError, match="shard_size"):
            shard_counts(10, 0)


def _double(spec):
    return spec * 2


def _fail_outside_pid(spec):
    """Fails in any process other than the one named in the spec."""
    parent_pid, value = spec
    if os.getpid() != parent_pid:
        raise RuntimeError("worker-side failure")
    return value


def _always_fail(spec):
    raise ValueError(f"bad spec {spec}")


class TestMapShards:
    def test_inline_preserves_order(self):
        pool = ExperimentPool(1)
        assert pool.map_shards(_double, [1, 2, 3]) == [2, 4, 6]

    def test_parallel_matches_inline(self):
        specs = list(range(10))
        inline = ExperimentPool(1).map_shards(_double, specs)
        fanned = ExperimentPool(2).map_shards(_double, specs)
        assert inline == fanned

    def test_worker_failure_retried_in_parent(self):
        # Every shard dies in the worker process but succeeds on the
        # in-parent retry, so the map completes.
        specs = [(os.getpid(), i) for i in range(4)]
        results = ExperimentPool(2).map_shards(_fail_outside_pid, specs)
        assert results == [0, 1, 2, 3]

    def test_deterministic_failure_raises(self):
        with pytest.raises(ValueError, match="bad spec"):
            ExperimentPool(2).map_shards(_always_fail, [1, 2])
        with pytest.raises(ValueError, match="bad spec"):
            ExperimentPool(1).map_shards(_always_fail, [1])


class TestTrialDeterminism:
    """The contract: results never depend on the worker count."""

    KW = dict(d_packets=8, p_n=0.05, n_trials=300, t_retry=0.05, seed=11,
              shard_size=64)

    def test_n_jobs_invariant(self):
        sequential = run_trials("full_nak", **self.KW)
        fanned = run_trials("full_nak", n_jobs=4, **self.KW)
        assert sequential == fanned

    def test_n_jobs_invariant_fast_path(self):
        sequential = run_trials("saw", fast=True, **self.KW)
        fanned = run_trials("saw", fast=True, n_jobs=4, **self.KW)
        assert sequential == fanned

    def test_seed_matters(self):
        kw = dict(self.KW)
        kw.pop("seed")
        a = run_trials("full_no_nak", seed=1, **kw)
        b = run_trials("full_no_nak", seed=2, **kw)
        assert a != b

    def test_shard_layout_is_part_of_the_stream(self):
        # Trial shard size is fixed by default exactly so that this
        # cannot happen behind the caller's back.
        kw = dict(self.KW)
        kw.pop("shard_size")
        a = run_trials("full_nak", shard_size=64, **kw)
        b = run_trials("full_nak", shard_size=50, **kw)
        assert a != b
        assert DEFAULT_TRIAL_SHARD_SIZE == 128

    def test_zero_trials_rejected(self):
        with pytest.raises(ValueError, match="no results"):
            run_trials("full_nak", 8, 0.05, 0, t_retry=0.05)


class TestTransferDeterminism:
    KW = dict(error_p=0.02, n_runs=12, seed=5)
    DATA = bytes(4 * 1024)

    def test_n_jobs_invariant(self):
        sequential = run_many("blast", self.DATA, **self.KW)
        fanned = run_many("blast", self.DATA, n_jobs=3, **self.KW)
        assert sequential == fanned

    def test_shard_size_invariant(self):
        # DES runs are seeded by global run index, so even the shard
        # layout (unlike Monte Carlo shards) cannot change the result.
        pool = ExperimentPool(1)
        a = pool.map_transfers("blast", self.DATA, 0.02, 10, seed=5,
                               shard_size=3)
        b = pool.map_transfers("blast", self.DATA, 0.02, 10, seed=5,
                               shard_size=7)
        assert [r.elapsed_s for r in a] == [r.elapsed_s for r in b]

    def test_collision_regression(self):
        # seed=0 run 1_000_003 and seed=1 run 0 used to share a loss
        # stream ("seed * 1_000_003 + run"); the mixed seeds — and the
        # coin-flip streams they generate — must now differ.
        import random

        seed_a = mix_seed(0, 1_000_003)
        seed_b = mix_seed(1, 0)
        assert seed_a != seed_b
        rng_a, rng_b = random.Random(seed_a), random.Random(seed_b)
        assert [rng_a.random() for _ in range(8)] != [
            rng_b.random() for _ in range(8)
        ]


class TestEmptySummaries:
    def test_trial_summary_empty_rejected(self):
        from repro.analysis.montecarlo import TrialSummary

        with pytest.raises(ValueError, match="no results to summarise"):
            TrialSummary.from_samples([])

    def test_run_summary_empty_rejected(self):
        from repro.core.runner import RunSummary

        with pytest.raises(ValueError, match="no results to summarise"):
            RunSummary.from_results([])
