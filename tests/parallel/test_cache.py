"""Tests for the keyed on-disk result cache."""

import dataclasses
import json

import pytest

from repro.analysis import run_trials
from repro.core import run_many
from repro.parallel import CACHE_ENV_VAR, ResultCache
from repro.parallel.cache import _jsonify
from repro.simnet import NetworkParams


class TestKeying:
    def test_key_is_stable(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = {"strategy": "saw", "p_n": 0.01, "seed": 0}
        assert cache.key("trials", config) == cache.key("trials", config)

    def test_key_ignores_dict_order(self, tmp_path):
        cache = ResultCache(tmp_path)
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert cache.key("trials", a) == cache.key("trials", b)

    def test_key_sensitive_to_every_field(self, tmp_path):
        cache = ResultCache(tmp_path)
        base = {"strategy": "saw", "p_n": 0.01, "seed": 0}
        baseline = cache.key("trials", base)
        for field, value in [("strategy", "full_nak"), ("p_n", 0.02), ("seed", 1)]:
            assert cache.key("trials", {**base, field: value}) != baseline
        assert cache.key("runs", base) != baseline

    def test_key_covers_params_dataclass(self, tmp_path):
        cache = ResultCache(tmp_path)
        standalone = {"params": NetworkParams.standalone()}
        vkernel = {"params": NetworkParams.vkernel()}
        assert cache.key("trials", standalone) != cache.key("trials", vkernel)

    def test_jsonify_bytes_and_sets(self):
        tagged = _jsonify(b"payload")
        assert tagged["__len__"] == 7
        assert len(tagged["__bytes_sha256__"]) == 64
        assert _jsonify({3, 1, 2}) == [1, 2, 3]
        with pytest.raises(TypeError, match="unserialisable"):
            _jsonify(object())


class TestStore:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = {"seed": 7}
        payload = {"mean_s": 0.125, "n_trials": 10}
        assert cache.get("trials", config) is None
        cache.put("trials", config, payload)
        assert cache.get("trials", config) == payload
        assert cache.stats == (1, 1)

    def test_float_payloads_roundtrip_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"mean_s": 0.1 + 0.2, "std_s": 1e-17}
        cache.put("trials", {"seed": 0}, payload)
        hit = cache.get("trials", {"seed": 0})
        assert hit["mean_s"] == payload["mean_s"]
        assert hit["std_s"] == payload["std_s"]

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = {"seed": 1}
        path = cache.put("trials", config, {"ok": True})
        path.write_text("{not json")
        assert cache.get("trials", config) is None
        assert not path.exists()
        cache.put("trials", config, {"ok": True})
        assert cache.get("trials", config) == {"ok": True}

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cache.put("trials", {"seed": 0}, {"ok": True})
        assert (tmp_path / "c").exists()
        cache.clear()
        assert not (tmp_path / "c").exists()

    def test_env_var_default_root(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "from_env"))
        cache = ResultCache()
        cache.put("trials", {"seed": 0}, {"ok": True})
        assert (tmp_path / "from_env").exists()

    def test_env_var_relative_override_rejected(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "relative/cache/dir")
        with pytest.raises(ValueError, match="absolute path"):
            ResultCache()

    def test_env_var_empty_override_rejected(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV_VAR, "   ")
        with pytest.raises(ValueError, match="set but empty"):
            ResultCache()

    def test_env_var_ignored_for_explicit_root(self, tmp_path, monkeypatch):
        # A bad override must not break callers that pass a root directly.
        monkeypatch.setenv(CACHE_ENV_VAR, "relative/cache/dir")
        cache = ResultCache(tmp_path / "explicit")
        cache.put("trials", {"seed": 0}, {"ok": True})
        assert (tmp_path / "explicit").exists()


class TestRunTrialsIntegration:
    KW = dict(d_packets=8, p_n=0.05, n_trials=200, t_retry=0.05, seed=3)

    def test_second_call_hits_and_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        first = run_trials("full_nak", cache=cache, **self.KW)
        assert cache.stats == (0, 1)
        second = run_trials("full_nak", cache=cache, **self.KW)
        assert cache.stats == (1, 1)
        assert second == first

    def test_hit_reproduces_uncached_result_exactly(self, tmp_path):
        cache = ResultCache(tmp_path)
        uncached = run_trials("saw", **self.KW)
        run_trials("saw", cache=cache, **self.KW)  # populate
        hit = run_trials("saw", cache=cache, **self.KW)
        assert hit == uncached

    def test_n_jobs_not_part_of_the_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_trials("full_no_nak", cache=cache, n_jobs=1, **self.KW)
        run_trials("full_no_nak", cache=cache, n_jobs=2, **self.KW)
        assert cache.stats.hits == 1

    def test_result_affecting_params_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_trials("full_nak", cache=cache, **self.KW)
        run_trials("full_nak", cache=cache, fast=True, **self.KW)
        kw = dict(self.KW, seed=4)
        run_trials("full_nak", cache=cache, **kw)
        assert cache.stats == (0, 3)


class TestRunManyIntegration:
    def test_second_call_hits_and_matches(self, tmp_path):
        cache = ResultCache(tmp_path)
        kw = dict(error_p=0.02, n_runs=5, seed=2, cache=cache)
        first = run_many("blast", bytes(2048), **kw)
        second = run_many("blast", bytes(2048), **kw)
        assert cache.stats == (1, 1)
        assert second == first

    def test_transfer_kwargs_in_key(self, tmp_path):
        cache = ResultCache(tmp_path)
        kw = dict(error_p=0.02, n_runs=3, seed=2, cache=cache)
        run_many("blast", bytes(2048), strategy="gobackn", **kw)
        run_many("blast", bytes(2048), strategy="selective", **kw)
        assert cache.stats == (0, 2)

    def test_payload_on_disk_is_json(self, tmp_path):
        cache = ResultCache(tmp_path)
        summary = run_many(
            "blast", bytes(2048), error_p=0.0, n_runs=2, seed=0, cache=cache
        )
        files = list(tmp_path.rglob("*.json"))
        assert len(files) == 1
        assert json.loads(files[0].read_text()) == dataclasses.asdict(summary)
