"""Equivalence tests: batched fast paths vs the reference simulator.

Two layers of proof, mirroring the module docstring:

- *exact*: drive reference and batched paths with the same
  :class:`CoinTape` and require identical samples AND identical coin
  consumption — this pins the accounting logic, not just the moments;
- *statistical*: with free-running RNGs the fast samplers draw from the
  same distributions, so summary statistics agree within Monte Carlo
  tolerance.
"""

import math
import random
import statistics

import pytest

from repro.analysis.montecarlo import (
    RoundCostModel,
    simulate_blast_transfer,
    simulate_saw_transfer,
)
from repro.parallel import (
    CoinTape,
    FAST_STRATEGIES,
    batched_blast_transfer,
    batched_saw_transfer,
    batched_trials,
    supports_fast,
)

COST = RoundCostModel()
TAPE_LEN = 200_000


class TestCoinTape:
    def test_replays_recorded_stream(self):
        tape = CoinTape.record(42, 10)
        reference = random.Random(42)
        assert [tape.random() for _ in range(10)] == [
            reference.random() for _ in range(10)
        ]

    def test_position_and_rewind(self):
        tape = CoinTape([0.1, 0.2, 0.3])
        assert len(tape) == 3
        tape.random()
        tape.random()
        assert tape.position == 2
        tape.rewind()
        assert tape.position == 0
        assert tape.random() == 0.1

    def test_exhaustion_raises(self):
        tape = CoinTape([0.5])
        tape.random()
        with pytest.raises(IndexError, match="exhausted after 1"):
            tape.random()


class TestSupportsFast:
    def test_fast_strategies(self):
        assert FAST_STRATEGIES == ("full_no_nak", "full_nak", "saw")
        for strategy in FAST_STRATEGIES:
            assert supports_fast(strategy)

    def test_loop_strategies_not_fast(self):
        assert not supports_fast("gobackn")
        assert not supports_fast("selective")


class TestExactTapeEquivalence:
    """Same tape in -> same sample out, same number of coins consumed."""

    @pytest.mark.parametrize("strategy", ["full_no_nak", "full_nak"])
    @pytest.mark.parametrize("cumulative", [False, True])
    def test_blast_matches_reference(self, strategy, cumulative):
        for seed in range(20):
            tape = CoinTape.record(seed, TAPE_LEN)
            reference = simulate_blast_transfer(
                strategy, 16, 0.2, 0.05, COST, tape, cumulative=cumulative
            )
            coins_used = tape.position
            tape.rewind()
            batched = batched_blast_transfer(
                strategy, 16, 0.2, 0.05, COST, tape, cumulative=cumulative
            )
            assert batched == reference
            assert tape.position == coins_used

    def test_saw_matches_reference(self):
        for seed in range(20):
            tape = CoinTape.record(100 + seed, TAPE_LEN)
            reference = simulate_saw_transfer(12, 0.15, 0.03, COST, tape)
            coins_used = tape.position
            tape.rewind()
            batched = batched_saw_transfer(12, 0.15, 0.03, COST, tape)
            assert batched == reference
            assert tape.position == coins_used

    @pytest.mark.parametrize("strategy", FAST_STRATEGIES)
    def test_batched_trials_bulk_matches_reference(self, strategy):
        tape = CoinTape.record(7, TAPE_LEN)
        reference = []
        for _ in range(30):
            if strategy == "saw":
                reference.append(simulate_saw_transfer(8, 0.1, 0.05, COST, tape))
            else:
                reference.append(
                    simulate_blast_transfer(strategy, 8, 0.1, 0.05, COST, tape)
                )
        coins_used = tape.position
        tape.rewind()
        batched = batched_trials(strategy, 8, 0.1, 30, 0.05, COST, tape)
        assert batched == reference
        assert tape.position == coins_used


def _moments(samples):
    elapsed = [s.elapsed_s for s in samples]
    return statistics.fmean(elapsed), statistics.stdev(elapsed)


class TestStatisticalEquivalence:
    """Free-running RNGs: same distribution, different streams."""

    N = 6000

    @pytest.mark.parametrize(
        "strategy,cumulative",
        [
            ("full_no_nak", False),
            ("full_nak", False),
            ("full_nak", True),
            ("saw", False),
        ],
    )
    def test_mean_and_std_agree(self, strategy, cumulative):
        d, p_n, t_retry = 16, 0.05, 0.05
        rng = random.Random(3)
        if strategy == "saw":
            reference = [
                simulate_saw_transfer(d, p_n, t_retry, COST, rng)
                for _ in range(self.N)
            ]
        else:
            reference = [
                simulate_blast_transfer(
                    strategy, d, p_n, t_retry, COST, rng, cumulative=cumulative
                )
                for _ in range(self.N)
            ]
        batched = batched_trials(
            strategy, d, p_n, self.N, t_retry, COST, random.Random(4),
            cumulative=cumulative,
        )
        ref_mean, ref_std = _moments(reference)
        fast_mean, fast_std = _moments(batched)
        # Means of two independent N-trial estimates differ by
        # O(std * sqrt(2/N)); 5 sigma keeps flakes out.
        tolerance = 5.0 * ref_std * math.sqrt(2.0 / self.N)
        assert abs(fast_mean - ref_mean) < tolerance
        assert fast_std == pytest.approx(ref_std, rel=0.15)

    def test_mean_frame_counts_agree(self):
        d, p_n, t_retry = 16, 0.1, 0.05
        rng = random.Random(5)
        reference = [
            simulate_blast_transfer("full_no_nak", d, p_n, t_retry, COST, rng)
            for _ in range(self.N)
        ]
        batched = batched_trials(
            "full_no_nak", d, p_n, self.N, t_retry, COST, random.Random(6)
        )
        for field in ("rounds", "data_frames_sent", "reply_frames_sent"):
            ref = statistics.fmean(getattr(s, field) for s in reference)
            fast = statistics.fmean(getattr(s, field) for s in batched)
            assert fast == pytest.approx(ref, rel=0.1)

    def test_error_free_is_exact(self):
        sample = batched_blast_transfer(
            "full_no_nak", 32, 0.0, 0.05, COST, random.Random(0)
        )
        assert sample.rounds == 1
        assert sample.data_frames_sent == 32
        assert sample.reply_frames_sent == 1
        assert sample.elapsed_s == pytest.approx(COST.t0(32))
        saw = batched_saw_transfer(32, 0.0, 0.05, COST, random.Random(0))
        assert saw.elapsed_s == pytest.approx(32 * COST.t0_single())


class TestValidation:
    def test_unknown_strategy_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="no batched fast path"):
            batched_blast_transfer("gobackn", 4, 0.1, 0.05, COST, rng)
        with pytest.raises(ValueError, match="no batched fast path"):
            batched_trials("selective", 4, 0.1, 10, 0.05, COST, rng)

    def test_bad_arguments_rejected(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="d_packets"):
            batched_blast_transfer("full_nak", 0, 0.1, 0.05, COST, rng)
        with pytest.raises(ValueError, match="p_n"):
            batched_blast_transfer("full_nak", 4, 1.0, 0.05, COST, rng)
        with pytest.raises(ValueError, match="d_packets"):
            batched_saw_transfer(0, 0.1, 0.05, COST, rng)
        with pytest.raises(ValueError, match="p_n"):
            batched_saw_transfer(4, -0.1, 0.05, COST, rng)
