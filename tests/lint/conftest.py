"""Shared helpers for the replint test suite."""

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures"
GOLDEN = Path(__file__).parent / "golden"
REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relative_path: source}`` under a tmp root and lint it."""

    def _lint(files, **kwargs):
        from repro.lint import run_lint

        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        return run_lint([tmp_path], **kwargs)

    return _lint


def rule_ids(result):
    """The set of rule ids present in a lint result."""
    return {violation.rule for violation in result.violations}
