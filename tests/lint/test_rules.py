"""Fixture-driven tests: one bad/good tree per REP rule.

Every rule must (a) fire on its bad fixture — and *only* that rule, so
the fixtures double as cross-rule false-positive checks — and (b) stay
silent on the good fixture.
"""

from pathlib import Path

import pytest

from repro.lint import all_rules, rule_registry, run_lint

from .conftest import FIXTURES, rule_ids

ALL_RULE_IDS = sorted(rule.id for rule in all_rules())


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_bad_fixture_fires_exactly_this_rule(rule_id):
    result = run_lint([FIXTURES / rule_id.lower() / "bad"])
    assert result.violations, f"{rule_id} bad fixture produced no violations"
    assert rule_ids(result) == {rule_id}, (
        f"{rule_id} bad fixture fired other rules: {result.violations}"
    )


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_good_fixture_is_clean(rule_id):
    result = run_lint([FIXTURES / rule_id.lower() / "good"])
    assert result.clean, (
        f"{rule_id} good fixture flagged: {result.violations}"
    )


@pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
def test_violations_carry_rule_metadata(rule_id):
    registry = rule_registry()
    rule = registry[rule_id]
    assert rule.severity in ("error", "warning")
    assert rule.title and rule.fix_hint
    result = run_lint([FIXTURES / rule_id.lower() / "bad"])
    for violation in result.violations:
        assert violation.severity == rule.severity
        assert violation.fix_hint == rule.fix_hint
        assert violation.line >= 1
        assert violation.path.endswith(".py")


def test_rule_ids_are_unique_and_well_formed():
    ids = [rule.id for rule in all_rules()]
    assert len(ids) == len(set(ids))
    assert all(i.startswith("REP1") and len(i) == 6 for i in ids)


def test_select_restricts_to_named_rules():
    result = run_lint([FIXTURES / "rep107" / "bad"], select=["REP101"])
    assert result.clean  # REP107's bad fixture has no REP101 violations


def test_ignore_drops_named_rules():
    result = run_lint([FIXTURES / "rep107" / "bad"], ignore=["REP107"])
    assert result.clean


def test_counts_cover_every_rule_even_when_zero():
    result = run_lint([FIXTURES / "rep101" / "good"])
    assert set(result.counts) == set(ALL_RULE_IDS) | {"REP100"}
    assert all(count == 0 for count in result.counts.values())


def test_rep101_flags_each_bad_call_site():
    result = run_lint([FIXTURES / "rep101" / "bad"])
    lines = sorted(v.line for v in result.violations)
    assert len(lines) == 4  # random.random, Random(), default_rng(), np global


def test_rep108_reports_unhandled_frame_and_codec_gap():
    result = run_lint([FIXTURES / "rep108" / "bad"])
    messages = " | ".join(v.message for v in result.violations)
    assert "ResetFrame" in messages
    assert "codec" in messages
    assert "NakOnlyReceiver" in messages
    by_file = {Path(v.path).name for v in result.violations}
    assert {"frames.py", "wire.py", "proto.py"} <= by_file


def test_rep110_names_the_stray_attribute_and_method():
    result = run_lint([FIXTURES / "rep110" / "bad"])
    messages = " | ".join(v.message for v in result.violations)
    assert "self.history" in messages and "Tracker.observe()" in messages
    assert "self.pending_size" in messages and "Window.resize()" in messages
    assert len(result.violations) == 2  # slot writes in the same methods pass
