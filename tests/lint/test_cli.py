"""CLI entry points: ``python -m repro.lint`` and ``python -m repro lint``."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

from .conftest import FIXTURES, REPO_ROOT


def _run_module(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestModuleEntryPoint:
    def test_clean_tree_exits_zero(self):
        proc = _run_module(str(FIXTURES / "rep101" / "good"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_bad_tree_exits_one_with_diagnostics(self):
        proc = _run_module(str(FIXTURES / "rep101" / "bad"))
        assert proc.returncode == 1
        assert "REP101" in proc.stdout
        # file:line:col prefix on every diagnostic line
        assert "sampling.py:" in proc.stdout

    def test_unknown_rule_id_exits_two(self):
        proc = _run_module("--select", "REP999", str(FIXTURES))
        assert proc.returncode == 2
        assert "unknown rule id" in proc.stderr

    def test_missing_path_exits_two(self):
        proc = _run_module("no/such/dir")
        assert proc.returncode == 2


class TestInProcess:
    def test_json_format(self, capsys):
        code = lint_main(["--format", "json", str(FIXTURES / "rep106" / "bad")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["counts"]["REP106"] >= 1

    def test_select_and_ignore_combined(self, capsys):
        code = lint_main(
            [
                "--select", "REP106,REP107",
                "--ignore", "REP106",
                str(FIXTURES / "rep106" / "bad"),
            ]
        )
        assert code == 0

    def test_baseline_written(self, tmp_path, capsys):
        baseline = tmp_path / "ledger" / "baseline.txt"
        code = lint_main(
            ["--baseline", str(baseline), str(FIXTURES / "rep101" / "good")]
        )
        assert code == 0
        content = baseline.read_text()
        assert "REP101 0" in content
        assert content.endswith("total 0\n")

    def test_external_tools_missing_are_skipped(self, tmp_path, capsys, monkeypatch):
        # With an empty PATH neither ruff nor mypy resolves; the run must
        # still succeed and say why.
        monkeypatch.setenv("PATH", str(tmp_path))
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = lint_main(["--external", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ruff not installed" in out
        assert "mypy not installed" in out

    def test_repro_cli_lint_subcommand(self, capsys):
        code = repro_main(["lint", str(FIXTURES / "rep102" / "bad")])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP102" in out

    def test_repro_cli_lint_clean(self, capsys):
        code = repro_main(["lint", str(FIXTURES / "rep102" / "good")])
        assert code == 0

    def test_same_file_not_linted_twice_for_overlapping_roots(self, capsys):
        root = FIXTURES / "rep106" / "bad"
        code = lint_main(["--format", "json", str(root), str(root / "analysis")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["counts"]["REP106"] == 2  # the two lines, once each
