"""CLI entry points: ``python -m repro.lint`` and ``python -m repro lint``."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint.cli import main as lint_main

from .conftest import FIXTURES, REPO_ROOT


def _run_module(*args, cwd=REPO_ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True,
        text=True,
        cwd=cwd,
        env=env,
    )


class TestModuleEntryPoint:
    def test_clean_tree_exits_zero(self):
        proc = _run_module(str(FIXTURES / "rep101" / "good"))
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "clean" in proc.stdout

    def test_bad_tree_exits_one_with_diagnostics(self):
        proc = _run_module(str(FIXTURES / "rep101" / "bad"))
        assert proc.returncode == 1
        assert "REP101" in proc.stdout
        # file:line:col prefix on every diagnostic line
        assert "sampling.py:" in proc.stdout

    def test_unknown_rule_id_exits_two(self):
        proc = _run_module("--select", "REP999", str(FIXTURES))
        assert proc.returncode == 2
        assert "unknown rule id" in proc.stderr

    def test_missing_path_exits_two(self):
        proc = _run_module("no/such/dir")
        assert proc.returncode == 2


class TestInProcess:
    def test_json_format(self, capsys):
        code = lint_main(["--format", "json", str(FIXTURES / "rep106" / "bad")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["counts"]["REP106"] >= 1

    def test_select_and_ignore_combined(self, capsys):
        code = lint_main(
            [
                "--select", "REP106,REP107",
                "--ignore", "REP106",
                str(FIXTURES / "rep106" / "bad"),
            ]
        )
        assert code == 0

    def test_baseline_written(self, tmp_path, capsys):
        baseline = tmp_path / "ledger" / "baseline.txt"
        code = lint_main(
            ["--baseline", str(baseline), str(FIXTURES / "rep101" / "good")]
        )
        assert code == 0
        content = baseline.read_text()
        assert "REP101 0" in content
        assert content.endswith("total 0\n")

    def test_external_tools_missing_are_skipped(self, tmp_path, capsys, monkeypatch):
        # With an empty PATH neither ruff nor mypy resolves; the run must
        # still succeed and say why.
        monkeypatch.setenv("PATH", str(tmp_path))
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = lint_main(["--external", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "ruff not installed" in out
        assert "mypy not installed" in out

    def test_repro_cli_lint_subcommand(self, capsys):
        code = repro_main(["lint", str(FIXTURES / "rep102" / "bad")])
        out = capsys.readouterr().out
        assert code == 1
        assert "REP102" in out

    def test_repro_cli_lint_clean(self, capsys):
        code = repro_main(["lint", str(FIXTURES / "rep102" / "good")])
        assert code == 0

    def test_same_file_not_linted_twice_for_overlapping_roots(self, capsys):
        root = FIXTURES / "rep106" / "bad"
        code = lint_main(["--format", "json", str(root), str(root / "analysis")])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["counts"]["REP106"] == 2  # the two lines, once each


BAD_RNG = "import random\n\n\ndef draw():\n    return random.random()\n"
BAD_CLOCK = "import time\n\n\ndef now():\n    return time.time()\n"


class TestSubsetSelection:
    def test_paths_pattern_limits_files(self, tmp_path, capsys):
        (tmp_path / "sim").mkdir()
        (tmp_path / "analysis").mkdir()
        (tmp_path / "sim" / "clock.py").write_text(BAD_CLOCK)
        (tmp_path / "analysis" / "rng.py").write_text(BAD_RNG)
        code = lint_main(
            ["--format", "json", "--paths", "sim/*", str(tmp_path)]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["counts"]["REP102"] == 1
        assert payload["counts"]["REP101"] == 0  # analysis/ filtered out
        assert payload["project_rules_skipped"] is True

    def test_subset_note_names_skipped_project_rules(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = lint_main(["--paths", "*.py", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        for rule_id in ("REP108", "REP112", "REP113", "REP114"):
            assert rule_id in out

    def test_full_run_does_not_print_subset_note(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        code = lint_main([str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "REP108" not in out

    def test_changed_outside_git_repo_exits_two(self, tmp_path):
        proc = _run_module("--changed", "HEAD", str(tmp_path), cwd=tmp_path)
        assert proc.returncode == 2

    def test_changed_lints_only_touched_python_files(self, tmp_path):
        git_env = dict(
            os.environ,
            GIT_AUTHOR_NAME="t",
            GIT_AUTHOR_EMAIL="t@t",
            GIT_COMMITTER_NAME="t",
            GIT_COMMITTER_EMAIL="t@t",
        )

        def git(*args):
            subprocess.run(
                ["git", *args],
                cwd=tmp_path,
                env=git_env,
                check=True,
                capture_output=True,
            )

        git("init", "-q")
        (tmp_path / "sim").mkdir()
        (tmp_path / "sim" / "clock.py").write_text("x = 1\n")
        (tmp_path / "legacy.py").write_text(BAD_RNG)
        (tmp_path / "notes.txt").write_text("not python\n")
        git("add", "-A")
        git("commit", "-q", "-m", "seed")
        # Touch one tracked file and add one untracked file; the legacy
        # REP101 violation must NOT appear in a --changed run.
        (tmp_path / "sim" / "clock.py").write_text(BAD_CLOCK)
        (tmp_path / "fresh.py").write_text("y = 2\n")

        proc = _run_module("--changed", "HEAD", "--format", "json",
                           str(tmp_path), cwd=tmp_path)
        payload = json.loads(proc.stdout)
        assert proc.returncode == 1
        assert payload["counts"]["REP102"] == 1
        assert payload["counts"]["REP101"] == 0
        assert payload["files_checked"] == 2  # sim/clock.py + fresh.py
        assert payload["project_rules_skipped"] is True


class TestFsmMatrixFlag:
    def test_matrix_written_alongside_lint(self, tmp_path, capsys):
        out_path = tmp_path / "results" / "matrix.txt"
        code = lint_main(
            [
                "--fsm-matrix", str(out_path),
                str(REPO_ROOT / "src"),
                str(REPO_ROOT / "benchmarks"),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FSM matrix written" in out
        assert out_path.read_text().endswith("uncovered=0\n")
