"""Global-RNG helper in the REP101-exempt tree (reached from workloads/)."""

import random


def jitter() -> float:
    return random.random() - 0.5
