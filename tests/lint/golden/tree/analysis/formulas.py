"""Golden-report fixture: one live violation, one suppressed."""


def guard(p_c: float) -> bool:
    return p_c == 1.0


def guarded(p_c: float) -> bool:
    return p_c == 1.0  # replint: disable=REP106
