"""Blocking helper reached from the golden tree's service loop."""

import time


def settle() -> None:
    time.sleep(0.01)
