"""Golden-report fixture: a transitive REP112 finding with a chain."""

from util.wrappers import settle


class Pump:
    def poll(self, now: float) -> float:
        settle()
        return now
