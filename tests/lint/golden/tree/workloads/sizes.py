"""Golden-report fixture: a transitive REP113 finding with a chain."""

from benchmarks.noise import jitter


def noisy(base: int) -> int:
    return base + int(jitter())
