"""Suppression edge cases: line vs file scope, unknown ids, select/ignore."""

import pytest

from repro.lint import UsageError, run_lint

from .conftest import rule_ids

BAD_RNG = "import random\n\n\ndef draw():\n    return random.random()\n"


class TestLineLevelDisable:
    def test_disable_on_flagged_line_suppresses(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "import random\n\n\ndef draw():\n"
                    "    return random.random()  # replint: disable=REP101\n"
                )
            }
        )
        assert result.clean
        assert result.suppressed == 1

    def test_disable_on_other_line_does_not_suppress(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "import random  # replint: disable=REP101\n\n\n"
                    "def draw():\n    return random.random()\n"
                )
            }
        )
        assert rule_ids(result) == {"REP101"}
        assert result.suppressed == 0

    def test_disable_for_different_rule_does_not_suppress(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "import random\n\n\ndef draw():\n"
                    "    return random.random()  # replint: disable=REP102\n"
                )
            }
        )
        assert rule_ids(result) == {"REP101"}

    def test_comma_separated_ids(self, lint_tree):
        result = lint_tree(
            {
                "sim/mod.py": (
                    "import random\nimport time\n\n\ndef draw():\n"
                    "    return random.random() + time.time()"
                    "  # replint: disable=REP101, REP102\n"
                )
            }
        )
        assert result.clean
        assert result.suppressed == 2


class TestFileLevelDisable:
    def test_disable_file_suppresses_everywhere(self, lint_tree):
        result = lint_tree(
            {"mod.py": "# replint: disable-file=REP101\n" + BAD_RNG}
        )
        assert result.clean
        assert result.suppressed == 1

    def test_disable_file_at_bottom_still_counts(self, lint_tree):
        result = lint_tree(
            {"mod.py": BAD_RNG + "\n# replint: disable-file=REP101\n"}
        )
        assert result.clean

    def test_disable_file_only_affects_its_own_file(self, lint_tree):
        result = lint_tree(
            {
                "clean.py": "# replint: disable-file=REP101\n" + BAD_RNG,
                "dirty.py": BAD_RNG,
            }
        )
        assert [v.path.endswith("dirty.py") for v in result.violations] == [True]

    def test_disable_all(self, lint_tree):
        result = lint_tree(
            {"mod.py": "# replint: disable-file=all\n" + BAD_RNG}
        )
        assert result.clean


class TestUnknownIds:
    def test_unknown_id_in_suppression_is_reported(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "import random\n\n\ndef draw():\n"
                    "    return random.random()  # replint: disable=REP999\n"
                )
            }
        )
        # The bogus suppression is flagged AND the original stays live.
        assert rule_ids(result) == {"REP100", "REP101"}

    def test_unknown_id_in_file_disable_is_reported(self, lint_tree):
        result = lint_tree({"mod.py": "# replint: disable-file=NOPE\n"})
        assert rule_ids(result) == {"REP100"}

    def test_meta_rule_cannot_be_suppressed(self, lint_tree):
        result = lint_tree(
            {"mod.py": "# replint: disable-file=all\n# replint: disable=REP999\n"}
        )
        assert rule_ids(result) == {"REP100"}

    def test_unknown_select_raises_usage_error(self, lint_tree):
        with pytest.raises(UsageError, match="REP999"):
            lint_tree({"mod.py": "x = 1\n"}, select=["REP999"])

    def test_unknown_ignore_raises_usage_error(self, lint_tree):
        with pytest.raises(UsageError, match="unknown rule id"):
            lint_tree({"mod.py": "x = 1\n"}, ignore=["BOGUS"])


class TestSyntaxErrors:
    def test_unparseable_file_reports_rep100(self, lint_tree):
        result = lint_tree({"mod.py": "def broken(:\n"})
        assert rule_ids(result) == {"REP100"}
        assert "does not parse" in result.violations[0].message
