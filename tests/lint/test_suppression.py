"""Suppression edge cases: line vs file scope, unknown ids, select/ignore."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lint import UsageError, all_rules, run_lint
from repro.lint.engine import Suppressions, Violation

from .conftest import rule_ids

BAD_RNG = "import random\n\n\ndef draw():\n    return random.random()\n"


class TestLineLevelDisable:
    def test_disable_on_flagged_line_suppresses(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "import random\n\n\ndef draw():\n"
                    "    return random.random()  # replint: disable=REP101\n"
                )
            }
        )
        assert result.clean
        assert result.suppressed == 1

    def test_disable_on_other_line_does_not_suppress(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "import random  # replint: disable=REP101\n\n\n"
                    "def draw():\n    return random.random()\n"
                )
            }
        )
        assert rule_ids(result) == {"REP101"}
        assert result.suppressed == 0

    def test_disable_for_different_rule_does_not_suppress(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "import random\n\n\ndef draw():\n"
                    "    return random.random()  # replint: disable=REP102\n"
                )
            }
        )
        assert rule_ids(result) == {"REP101"}

    def test_comma_separated_ids(self, lint_tree):
        result = lint_tree(
            {
                "sim/mod.py": (
                    "import random\nimport time\n\n\ndef draw():\n"
                    "    return random.random() + time.time()"
                    "  # replint: disable=REP101, REP102\n"
                )
            }
        )
        assert result.clean
        assert result.suppressed == 2


class TestFileLevelDisable:
    def test_disable_file_suppresses_everywhere(self, lint_tree):
        result = lint_tree(
            {"mod.py": "# replint: disable-file=REP101\n" + BAD_RNG}
        )
        assert result.clean
        assert result.suppressed == 1

    def test_disable_file_at_bottom_still_counts(self, lint_tree):
        result = lint_tree(
            {"mod.py": BAD_RNG + "\n# replint: disable-file=REP101\n"}
        )
        assert result.clean

    def test_disable_file_only_affects_its_own_file(self, lint_tree):
        result = lint_tree(
            {
                "clean.py": "# replint: disable-file=REP101\n" + BAD_RNG,
                "dirty.py": BAD_RNG,
            }
        )
        assert [v.path.endswith("dirty.py") for v in result.violations] == [True]

    def test_disable_all(self, lint_tree):
        result = lint_tree(
            {"mod.py": "# replint: disable-file=all\n" + BAD_RNG}
        )
        assert result.clean


class TestUnknownIds:
    def test_unknown_id_in_suppression_is_reported(self, lint_tree):
        result = lint_tree(
            {
                "mod.py": (
                    "import random\n\n\ndef draw():\n"
                    "    return random.random()  # replint: disable=REP999\n"
                )
            }
        )
        # The bogus suppression is flagged AND the original stays live.
        assert rule_ids(result) == {"REP100", "REP101"}

    def test_unknown_id_in_file_disable_is_reported(self, lint_tree):
        result = lint_tree({"mod.py": "# replint: disable-file=NOPE\n"})
        assert rule_ids(result) == {"REP100"}

    def test_meta_rule_cannot_be_suppressed(self, lint_tree):
        result = lint_tree(
            {"mod.py": "# replint: disable-file=all\n# replint: disable=REP999\n"}
        )
        assert rule_ids(result) == {"REP100"}

    def test_unknown_select_raises_usage_error(self, lint_tree):
        with pytest.raises(UsageError, match="REP999"):
            lint_tree({"mod.py": "x = 1\n"}, select=["REP999"])

    def test_unknown_ignore_raises_usage_error(self, lint_tree):
        with pytest.raises(UsageError, match="unknown rule id"):
            lint_tree({"mod.py": "x = 1\n"}, ignore=["BOGUS"])


ALL_RULE_IDS = sorted(rule.id for rule in all_rules())


def _violation(rule_id, line):
    return Violation(
        path="mod.py",
        line=line,
        col=0,
        rule=rule_id,
        severity="warning",
        message="synthetic",
        fix_hint="",
    )


class TestSuppressionProperties:
    """Hypothesis: the hides() contract holds for every registered rule."""

    @given(
        rule_id=st.sampled_from(ALL_RULE_IDS),
        line=st.integers(min_value=1, max_value=500),
        file_level=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_matching_directive_hides_any_registered_rule(
        self, rule_id, line, file_level
    ):
        if file_level:
            sup = Suppressions(file_level={rule_id})
        else:
            sup = Suppressions(by_line={line: {rule_id}})
        assert sup.hides(_violation(rule_id, line))

    @given(
        rule_id=st.sampled_from(ALL_RULE_IDS),
        other=st.sampled_from(ALL_RULE_IDS),
        line=st.integers(min_value=1, max_value=500),
        offset=st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=60, deadline=None)
    def test_directive_scope_is_exact(self, rule_id, other, line, offset):
        sup = Suppressions(by_line={line: {rule_id}})
        # A different line never matches; a different rule never matches.
        assert not sup.hides(_violation(rule_id, line + offset))
        if other != rule_id:
            assert not sup.hides(_violation(other, line))

    @given(
        line=st.integers(min_value=1, max_value=500),
        ids=st.sets(st.sampled_from(ALL_RULE_IDS + ["ALL"]), min_size=0),
    )
    @settings(max_examples=60, deadline=None)
    def test_meta_rule_is_never_silenceable(self, line, ids):
        sup = Suppressions(file_level=set(ids), by_line={line: set(ids)})
        assert not sup.hides(_violation("REP100", line))

    @given(
        rule_id=st.sampled_from(ALL_RULE_IDS),
        line=st.integers(min_value=1, max_value=500),
    )
    @settings(max_examples=30, deadline=None)
    def test_all_wildcard_hides_every_non_meta_rule(self, rule_id, line):
        sup = Suppressions(file_level={"ALL"})
        assert sup.hides(_violation(rule_id, line)) == (rule_id != "REP100")

    @pytest.mark.parametrize("rule_id", ALL_RULE_IDS)
    def test_disable_file_parses_for_every_rule(self, rule_id, lint_tree):
        # End-to-end: the directive parser accepts every registered id
        # without tripping REP100's unknown-id diagnostic.
        result = lint_tree(
            {"mod.py": f"# replint: disable-file={rule_id}\nx = 1\n"}
        )
        assert result.clean


class TestSyntaxErrors:
    def test_unparseable_file_reports_rep100(self, lint_tree):
        result = lint_tree({"mod.py": "def broken(:\n"})
        assert rule_ids(result) == {"REP100"}
        assert "does not parse" in result.violations[0].message
