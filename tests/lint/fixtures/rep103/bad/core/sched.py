"""REP103 bad fixture: hash-ordered iteration in a hot path."""


def drain(names):
    ready = {"timer", "frame", "ack"}
    order = []
    for name in ready:
        order.append(name)
    extras = [item for item in set(names)]
    joined = ",".join(ready)
    return order, extras, joined


def by_view(keys):
    table = {key: len(key) for key in set(keys)}
    total = []
    for value in table.values():
        total.append(value)
    return total
