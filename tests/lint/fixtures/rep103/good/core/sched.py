"""REP103 good fixture: sets are sorted before any ordered use."""


def drain(names):
    ready = {"timer", "frame", "ack"}
    order = []
    for name in sorted(ready):
        order.append(name)
    extras = [item for item in sorted(set(names))]
    joined = ",".join(sorted(ready))
    # Order-independent consumption of a set is fine.
    count = len(ready)
    present = "timer" in ready
    return order, extras, joined, count, present
