"""REP114 bad fixture: three distinct model-check failures."""

from core.frames import AckFrame, DataFrame, FrameKind, NakFrame


class LeakySender:
    """Neither handles, speaks, nor ignores NAK — exhaustiveness gap."""

    def push(self, seq: int, payload: bytes) -> DataFrame:
        return DataFrame(seq, payload)

    def on_frame(self, frame) -> bool:
        return isinstance(frame, AckFrame)


class CarefulSender:
    """Declares DATA ignored while its own body dispatches on it."""

    FSM_IGNORES = (FrameKind.DATA,)

    def on_frame(self, frame) -> str:
        if isinstance(frame, DataFrame):
            return "data"
        if isinstance(frame, (AckFrame, NakFrame)):
            return "reply"
        return "other"


class ResettingSender:
    """Terminal flag resurrected outside the constructor."""

    FSM_IGNORES = (FrameKind.NAK,)

    def __init__(self) -> None:
        self.done = False
        self.outbox = DataFrame(0, b"")

    def finish(self) -> None:
        self.done = True

    def on_frame(self, frame) -> None:
        if isinstance(frame, AckFrame):
            self.done = False
