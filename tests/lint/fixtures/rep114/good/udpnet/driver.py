"""REP114 good fixture: every kind covered, terminals absorbing."""

from core.frames import AckFrame, DataFrame, FrameKind, NakFrame


class SteadySender:
    """Speaks DATA, handles ACK, explicitly ignores NAK."""

    FSM_IGNORES = (FrameKind.NAK,)

    def __init__(self, total: int) -> None:
        self.total = total
        self.done = False
        self.failed = False

    def push(self, seq: int, payload: bytes) -> DataFrame:
        return DataFrame(seq, payload)

    def on_frame(self, frame) -> None:
        if isinstance(frame, AckFrame) and frame.seq == self.total - 1:
            self.done = True

    def give_up(self) -> None:
        self.failed = True


class SteadyReceiver:
    """Handles DATA, speaks both reply kinds."""

    def __init__(self) -> None:
        self.highest = -1

    def on_frame(self, frame):
        if not isinstance(frame, DataFrame):
            return None
        if frame.seq == self.highest + 1:
            self.highest = frame.seq
            return AckFrame(frame.seq)
        return NakFrame((self.highest + 1,))
