"""Minimal frame vocabulary for the REP114 good fixture (3 kinds)."""

import enum


class FrameKind(enum.IntEnum):
    DATA = 1
    ACK = 2
    NAK = 3


class DataFrame:
    def __init__(self, seq: int, payload: bytes):
        self.seq = seq
        self.payload = payload


class AckFrame:
    def __init__(self, seq: int):
        self.seq = seq


class NakFrame:
    def __init__(self, missing):
        self.missing = tuple(missing)
