"""REP105 bad fixture: ambient configuration reads in a simulator."""

import os


def debug_enabled() -> bool:
    return bool(os.environ.get("REPRO_DEBUG"))


def trace_path() -> str:
    return os.getenv("REPRO_TRACE", "")
