"""REP105 good fixture: parallel/cache.py is the sanctioned boundary."""

import os


def cache_root() -> str:
    return os.environ.get("REPRO_CACHE_DIR", ".repro_cache")
