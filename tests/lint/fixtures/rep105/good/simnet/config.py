"""REP105 good fixture: configuration flows through parameters."""


def debug_enabled(debug: bool = False) -> bool:
    return debug


def trace_path(path: str = "") -> str:
    return path
