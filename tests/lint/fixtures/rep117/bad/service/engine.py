"""REP117 bad fixture: every wakeup walks the whole active table."""


class ServiceCore:
    def __init__(self):
        self._active = {}

    def poll(self, now):
        outputs = []
        for stream_id, entry in self._active.items():
            entry.machine.poll(now)
            if entry.machine.has_frame(now):
                outputs.append(stream_id)
        return outputs

    def next_deadline(self, now):
        deadlines = [entry.machine.next_deadline()
                     for entry in self._active.values()]
        candidates = [deadline for deadline in deadlines
                      if deadline is not None]
        return min(candidates) if candidates else None
