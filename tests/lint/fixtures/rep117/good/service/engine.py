"""REP117 good fixture: hot paths read the indexes; one sanctioned walk."""

from heapq import heappop


class ServiceCore:
    def __init__(self):
        self._active = {}
        self._deadline_heap = []
        self._ready = {}
        self._client_positions = {}

    def poll(self, now):
        due = []
        while self._deadline_heap and self._deadline_heap[0][0] <= now:
            _deadline, stream_id = heappop(self._deadline_heap)
            if self._active.get(stream_id) is not None:
                due.append(stream_id)
        return due

    def next_deadline(self, now):
        if self._ready:
            return now
        if self._deadline_heap:
            return self._deadline_heap[0][0]
        return None

    def _rebuild_client_index(self):
        positions = {}
        for entry in self._active.values():
            if entry.client not in positions:
                positions[entry.client] = len(positions)
        self._client_positions = positions
