"""REP108 bad fixture protocols: incomplete frame handling."""

from .frames import AckFrame, DataFrame, NakFrame


class Sender:
    def send(self, payload):
        return DataFrame()

    def on_reply(self, frame):
        return isinstance(frame, AckFrame)


class NakOnlyReceiver:
    """Speaks NakFrame but never AckFrame — cannot terminate positively."""

    def on_data(self, frame):
        return NakFrame()
