"""REP108 bad fixture frame vocabulary: ResetFrame is never handled."""


class FrameKind:
    DATA = 1
    ACK = 2
    NAK = 3
    RESET = 4


class DataFrame:
    kind = FrameKind.DATA


class AckFrame:
    kind = FrameKind.ACK


class NakFrame:
    kind = FrameKind.NAK


class ResetFrame:
    kind = FrameKind.RESET
