"""REP108 good fixture frame vocabulary."""


class FrameKind:
    DATA = 1
    ACK = 2
    NAK = 3


class DataFrame:
    kind = FrameKind.DATA


class AckFrame:
    kind = FrameKind.ACK


class NakFrame:
    kind = FrameKind.NAK
