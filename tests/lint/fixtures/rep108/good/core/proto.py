"""REP108 good fixture protocols: every frame kind is handled."""

from .frames import AckFrame, DataFrame, NakFrame


class Sender:
    def send(self, payload):
        return DataFrame()

    def on_reply(self, frame):
        if isinstance(frame, AckFrame):
            return True
        if isinstance(frame, NakFrame):
            return False
        return None


class Receiver:
    def on_data(self, frame):
        if isinstance(frame, DataFrame) and self.complete:
            return AckFrame()
        return NakFrame()
