"""REP108 good fixture codec: every frame kind crosses the wire."""

from .frames import AckFrame, DataFrame, FrameKind, NakFrame


def encode(frame):
    if isinstance(frame, DataFrame):
        return (FrameKind.DATA, frame)
    if isinstance(frame, AckFrame):
        return (FrameKind.ACK, frame)
    if isinstance(frame, NakFrame):
        return (FrameKind.NAK, frame)
    raise ValueError("unknown frame")
