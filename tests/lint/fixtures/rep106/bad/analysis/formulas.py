"""REP106 bad fixture: exact float comparison in a formula."""

import math


def mean_retries(p_c: float) -> float:
    if p_c == 1.0:
        return math.inf
    if p_c != 0.0:
        return p_c / (1.0 - p_c)
    return 0.0
