"""REP106 good fixture: inequality guards instead of float equality."""

import math


def mean_retries(p_c: float) -> float:
    if p_c >= 1.0:
        return math.inf
    if p_c > 0.0:
        return p_c / (1.0 - p_c)
    return 0.0


def total(count: int) -> bool:
    # Integer equality is fine; REP106 only flags float literals.
    return count == 0
