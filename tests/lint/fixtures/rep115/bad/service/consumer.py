"""REP115 bad fixture: ring-slot views escaping the batch iteration."""


class Sink:
    def __init__(self, io) -> None:
        self.io = io
        self.stash = []
        self.last = None

    def hoard(self) -> None:
        for view, _sender in self.io.recv_batch():
            self.stash.append(view)

    def remember(self) -> None:
        for view, _sender in self.io.recv_batch():
            self.last = view

    def first(self):
        for view, _sender in self.io.recv_batch():
            return view
        return None
