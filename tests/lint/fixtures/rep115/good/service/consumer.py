"""REP115 good fixture: every stored datagram is copied out first."""


def decode(view):
    return bytes(view)


class Collector:
    def __init__(self, io) -> None:
        self.io = io
        self.frames = []

    def drain(self) -> None:
        for view, sender in self.io.recv_batch():
            self.frames.append((decode(view), sender))

    def snapshot(self) -> bytes:
        for view, _sender in self.io.recv_batch():
            return bytes(view)
        return b""
