"""REP104 bad fixture: unpicklable callables shipped to workers."""


def run(pool, specs):
    doubled = pool.map_shards(lambda spec: spec * 2, specs)

    def local_worker(spec):
        return spec + 1

    bumped = pool.map_shards(local_worker, specs)

    shift = lambda spec: spec - 1  # noqa: E731
    shifted = pool.map_shards(shift, specs)
    return doubled, bumped, shifted
