"""REP104 good fixture: workers are module-level, pickled by reference."""


def double_worker(spec):
    return spec * 2


def run(pool, specs):
    doubled = pool.map_shards(double_worker, specs)
    # A lambda that never crosses a process boundary is fine.
    tagged = [(lambda s: s)(spec) for spec in specs]
    return doubled, tagged
