"""REP113 good fixture: every RNG's seed flows in from the caller."""

import random

from parallel.mix import derive


def sized_rng(seed: int) -> random.Random:
    return random.Random(seed)


def indexed_rng(seed: int, index: int) -> random.Random:
    return random.Random(derive(seed, index))


def shuffled(samples, rng: random.Random):
    rng.shuffle(samples)
    return list(samples)
