"""Deterministic child-seed derivation (no RNG of its own)."""


def derive(seed: int, index: int) -> int:
    return (seed * 1_000_003 + index) % (2 ** 63)
