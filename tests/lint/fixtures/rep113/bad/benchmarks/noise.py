"""Global-RNG helper living in the REP101-exempt benchmarks tree."""

import random


def jitter() -> float:
    return random.random() - 0.5
