"""REP113 bad fixture: three ways a seed fails to flow from the caller."""

import random

from benchmarks.noise import jitter


def constant_rng() -> int:
    rng = random.Random(1234)
    return rng.randrange(10)


def shuffle_with(samples, rng):
    rng.shuffle(samples)
    return samples


def module_passthrough(samples):
    return shuffle_with(samples, random)


def noisy_sizes(base: int):
    return [base + jitter() for _ in range(4)]
