"""REP109 good fixture: every wait is bounded by the core's deadline."""


def pump(endpoint, core, now: float):
    deadline = core.next_deadline(now)
    wait = 0.05 if deadline is None else max(deadline - now, 0.0005)
    return endpoint._recv_frame(timeout_s=wait)


def send(batch, frame, addr) -> None:
    batch.send_frame(frame, addr)


def wait_bounded(selector, wait: float):
    return selector.select(wait)


def wait_writable(select_mod, fd, wait_s: float):
    return select_mod.select([], [fd], [], wait_s)
