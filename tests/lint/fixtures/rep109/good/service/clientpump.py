"""REP109 good fixture: the client pump mirrors the real pull loop —
one bounded selector wait over many client sockets."""


def pull(selector, io, core, deadline_s: float, now: float):
    wait = max(min(deadline_s - now, 0.05), 0.0)
    for _key, _mask in selector.select(wait):
        for view, sender in io.recv_batch():
            core.on_frame(view, now, client=sender)
