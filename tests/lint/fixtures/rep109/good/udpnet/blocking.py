"""REP109 good fixture: blocking calls outside service/ are in scope of
other policies, not this rule (single-transfer endpoints may block)."""

import time


def backoff(retry_s: float) -> None:
    time.sleep(retry_s)


def pull(sock):
    return sock.recvfrom(2048)
