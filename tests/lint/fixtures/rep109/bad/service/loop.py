"""REP109 bad fixture: blocking calls inside the service event loop."""

import time


def wait_for_budget(quantum_s: float) -> None:
    time.sleep(quantum_s)


def pull_one(sock):
    return sock.recv(2048)


def take_connection(sock):
    return sock.accept()
