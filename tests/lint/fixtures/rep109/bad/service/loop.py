"""REP109 bad fixture: blocking calls inside the service event loop."""

import time


def wait_for_budget(quantum_s: float) -> None:
    time.sleep(quantum_s)


def pull_one(sock):
    return sock.recv(2048)


def take_connection(sock):
    return sock.accept()


def spin(selector):
    # No timeout at all: parks the shared loop until a frame shows up.
    return selector.select()


def spin_forever(selector):
    return selector.select(None)
