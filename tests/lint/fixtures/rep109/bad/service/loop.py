"""REP109 bad fixture: blocking calls inside the service event loop."""

import time


def wait_for_budget(quantum_s: float) -> None:
    time.sleep(quantum_s)


def pump(sock):
    datagram, sender = sock.recvfrom(2048)
    return datagram, sender


def pull_one(sock):
    return sock.recv(2048)
