"""REP102 bad fixture: wall-clock reads inside simulated-time code."""

import time
from datetime import datetime


def stamp() -> float:
    return time.time()


def tick() -> float:
    return time.monotonic()


def today():
    return datetime.now()
