"""REP102 good fixture: simulated code reads the simulation clock."""


def stamp(env) -> float:
    return env.now


def wait(env, delay_s: float):
    yield env.timeout(delay_s)
