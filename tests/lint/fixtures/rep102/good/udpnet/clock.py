"""Real-socket transports measure real time — udpnet/ is exempt."""

import time


def elapsed(start: float) -> float:
    return time.monotonic() - start
