"""REP111 bad fixture: raw datagram syscalls bypassing the batch layer."""


def blast(sock, payload, address) -> None:
    sock.sendto(payload, address)


def drain(sock, buffer):
    return sock.recvfrom_into(buffer)
