"""REP111 good fixture: client-side sends also go through the batch
layer (the real clientpump.py pattern), never raw sendto."""


def push(io, frames, address) -> None:
    for frame in frames:
        io.send_frame(frame, address)


def flush(io) -> None:
    io.flush_held()
