"""REP111 good fixture: service code sends through DatagramBatchIO."""


def pump(batch, core, now: float) -> None:
    for frame, address in core.drain_sends(now, 128):
        batch.send_frame(frame, address)
    for view, sender in batch.recv_batch():
        core.on_frame(view, now, client=sender)
