"""REP111 good fixture: the batch layer itself owns the raw syscalls."""


def push(sock, payload, address) -> None:
    sock.sendto(payload, address)


def fill(sock, buffer):
    return sock.recvfrom_into(buffer)
