"""REP111 good fixture: raw datagram I/O outside service/ is in scope
of the endpoint layer's own policies, not this rule."""


def push(sock, payload, address) -> None:
    sock.sendto(payload, address)


def pull_into(sock, buffer):
    return sock.recvfrom_into(buffer)
