"""Bad: slotted kernel classes growing ad-hoc attributes after __init__."""


class Tracker:
    __slots__ = ("count", "last")

    def __init__(self):
        self.count = 0
        self.last = None

    def observe(self, value):
        self.count += 1
        self.last = value
        self.history = [value]  # not a slot: AttributeError at runtime


class Window(Tracker):
    __slots__ = ("size",)

    def __init__(self, size):
        super().__init__()
        self.size = size

    def resize(self, size):
        self.size = size
        self.pending_size = size  # not a slot anywhere in the chain
