"""Good: slots discipline on kernel classes, plus every sanctioned opt-out."""

from collections import deque
from dataclasses import dataclass


class Tracker:
    __slots__ = ("count", "last")

    def __init__(self):
        self.count = 0
        self.last = None

    def observe(self, value):
        self.count += 1
        self.last = value


class Window(Tracker):
    __slots__ = ("size",)

    def __init__(self, size):
        super().__init__()
        self.size = size

    def resize(self, size):
        self.size = size  # own slot
        self.last = size  # inherited slot


class Annotated:
    # Listing "__dict__" is the explicit opt-in to ad-hoc attributes.
    __slots__ = ("core", "__dict__")

    def __init__(self):
        self.core = None

    def annotate(self, note):
        self.note = note


@dataclass(frozen=True, slots=True)
class Point:
    x: int
    y: int

    def shifted(self, dx):
        return Point(self.x + dx, self.y)


@dataclass
class OpenRecord:
    # No slots=True: instances own a __dict__, ad-hoc attributes are fine.
    value: int = 0

    def touch(self):
        self.extra = 1


class Buffered(deque):
    # Base class defined elsewhere: its slots are unknowable, so the
    # class is skipped rather than guessed at.
    __slots__ = ()

    def push(self, item):
        self.latest = item
        self.append(item)
