"""Good: REP110 is scoped to sim/ and core/ — other packages are free."""


class ResultBucket:
    __slots__ = ("items",)

    def __init__(self):
        self.items = []

    def mark_done(self):
        self.done = True  # outside sim/ and core/: not REP110's business
