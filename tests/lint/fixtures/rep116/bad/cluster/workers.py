"""REP116 bad fixture: leaked and spawn-unsafe worker processes."""

import multiprocessing
import subprocess


def module_worker(spec):
    return spec


def fire_and_forget(spec):
    # Constructed and discarded: no reference survives, so the child
    # can never be joined and its exit code is lost.
    multiprocessing.Process(target=module_worker, args=(spec,)).start()


def spawn_unjoined(spec):
    proc = multiprocessing.Process(target=module_worker, args=(spec,))
    proc.start()
    # proc is neither joined nor handed anywhere that outlives us.


def popen_leak(spec):
    child = subprocess.Popen(spec.argv)
    child.poll()
    # never wait()ed: a zombie on most platforms.


def lambda_target(spec):
    proc = multiprocessing.Process(target=lambda: spec)
    proc.start()
    proc.join()


def nested_target(spec):
    def entry():
        return spec

    proc = multiprocessing.Process(target=entry)
    proc.start()
    proc.join()
