"""REP116 good fixture: joined handles, module-level spawn targets."""

import multiprocessing
import subprocess


def shard_worker(spec):
    return spec


class Handle:
    def __init__(self, process):
        self.process = process


def spawn(spec):
    # Escapes into a handle the caller joins — the coordinator pattern.
    process = multiprocessing.Process(target=shard_worker, args=(spec,))
    process.start()
    return Handle(process)


def run(specs):
    handles = [spawn(spec) for spec in specs]
    for handle in handles:
        handle.process.join()
    return handles


def run_one(spec):
    process = multiprocessing.Process(target=shard_worker, args=(spec,))
    process.start()
    process.join()
    return spec


def run_tool(argv):
    # Constructed-and-waited inline is a join, not a leak.
    subprocess.Popen(argv).wait()
    child = subprocess.Popen(argv)
    try:
        child.wait(timeout=5.0)
    finally:
        child.kill()
