"""REP107 bad fixture: mutable default and bare except in a retry path."""


def collect(item, seen=[]):
    seen.append(item)
    return seen


def retry(action, attempts={}):
    try:
        return action()
    except:
        attempts["failed"] = True
        return None
