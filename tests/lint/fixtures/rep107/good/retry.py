"""REP107 good fixture: None defaults and specific exception classes."""


def collect(item, seen=None):
    if seen is None:
        seen = []
    seen.append(item)
    return seen


def retry(action, attempts=None):
    attempts = dict(attempts or {})
    try:
        return action()
    except (OSError, ValueError):
        attempts["failed"] = True
        return None
