"""REP101 bad fixture: unseeded and global RNG use."""

import random

import numpy as np


def draw():
    return random.random()


def make_rng():
    return random.Random()


def numpy_rng():
    return np.random.default_rng()


def numpy_global():
    return np.random.normal(0.0, 1.0)
