"""REP101 good fixture: every RNG is explicitly seeded."""

import random

import numpy as np


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)


def draw(seed: int) -> float:
    return make_rng(seed).random()


def numpy_rng(seed: int):
    return np.random.default_rng(seed)
