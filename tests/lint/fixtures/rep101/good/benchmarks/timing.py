"""Benchmarks are exempt from REP101: jitter here is harmless."""

import random


def jitter() -> float:
    return random.random()
