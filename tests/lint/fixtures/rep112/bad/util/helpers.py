"""Helpers that wrap blocking primitives (outside REP109's scope)."""

import time


def nap() -> None:
    time.sleep(0.01)


def settle() -> None:
    nap()


def drain(sock) -> bytes:
    return sock.recv(4096)
