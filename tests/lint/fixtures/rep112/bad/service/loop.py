"""REP112 bad fixture: the event loop itself looks clean — every
blocking primitive hides one call away in util.helpers."""

from util.helpers import drain, settle


class Core:
    def poll(self, now: float) -> float:
        settle()
        return now

    def run(self, sock) -> None:
        while True:
            drain(sock)
