"""Helpers: one bounded, one blocking but unreachable from the loop."""

import time


def settle_bounded(wait: float) -> float:
    return min(wait, 0.05)


def offline_tool() -> None:
    # Blocking is fine here: nothing in service/ can reach this.
    time.sleep(0.5)
