"""REP112 good fixture: helpers reached from the loop never block."""

from util.helpers import settle_bounded


class Core:
    def poll(self, selector, wait: float) -> float:
        selector.select(wait)
        return settle_bounded(wait)
