"""Unit tests for the cross-module call graph (lint/callgraph.py).

Each test builds a small tree of sources on disk, parses it into the
engine's real :class:`FileContext` objects, and queries the graph the
way the whole-program rules do — so resolution claims in the module
docstring (aliased imports, cross-module MRO, nested defs, relative
imports, re-exports) are each pinned here.
"""

import ast
from pathlib import Path

import pytest

from repro.lint.callgraph import build_call_graph, module_name
from repro.lint.engine import FileContext, iter_python_files


@pytest.fixture
def graph_of(tmp_path):
    """Write ``{relative_path: source}``, parse, and build the graph."""

    def _build(files):
        for rel, source in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(source)
        ctxs = []
        for root, path in iter_python_files([tmp_path]):
            text = path.read_text()
            ctxs.append(
                FileContext(path, Path(root), text, ast.parse(text))
            )
        return build_call_graph(ctxs)

    return _build


def project_targets(graph, qname):
    return [
        site.target
        for site in graph.functions[qname].calls
        if site.kind == "project"
    ]


def test_module_name_mapping():
    assert module_name("service/engine.py") == "service.engine"
    assert module_name("cli.py") == "cli"
    assert module_name("udpnet/__init__.py") == "udpnet"


def test_direct_import_and_alias_resolution(graph_of):
    graph = graph_of({
        "util/helpers.py": "def settle():\n    pass\n",
        "app/one.py": (
            "from util.helpers import settle\n\n"
            "def go():\n    settle()\n"
        ),
        "app/two.py": (
            "from util.helpers import settle as calm\n\n"
            "def go():\n    calm()\n"
        ),
        "app/three.py": (
            "import util.helpers as uh\n\n"
            "def go():\n    uh.settle()\n"
        ),
    })
    for unit in ("app/one.py", "app/two.py", "app/three.py"):
        assert project_targets(graph, f"{unit}::go") == [
            "util/helpers.py::settle"
        ], unit


def test_relative_import_resolution(graph_of):
    graph = graph_of({
        "pkg/__init__.py": "",
        "pkg/base.py": "def ground():\n    pass\n",
        "pkg/sub/__init__.py": "",
        "pkg/sub/mod.py": (
            "from ..base import ground\nfrom . import sib\n\n"
            "def go():\n    ground()\n    sib.leaf()\n"
        ),
        "pkg/sub/sib.py": "def leaf():\n    pass\n",
    })
    assert project_targets(graph, "pkg/sub/mod.py::go") == [
        "pkg/base.py::ground",
        "pkg/sub/sib.py::leaf",
    ]


def test_reexport_chain_resolution(graph_of):
    graph = graph_of({
        "core/impl.py": "def work():\n    pass\n",
        "core/__init__.py": "from core.impl import work\n",
        "app/main.py": (
            "from core import work\n\n"
            "def go():\n    work()\n"
        ),
    })
    assert project_targets(graph, "app/main.py::go") == [
        "core/impl.py::work"
    ]


def test_cross_module_inheritance_resolves_self_calls(graph_of):
    graph = graph_of({
        "base/endpoint.py": (
            "class Endpoint:\n"
            "    def recv_frame(self):\n"
            "        pass\n"
        ),
        "proto/saw.py": (
            "from base.endpoint import Endpoint\n\n"
            "class Saw(Endpoint):\n"
            "    def pull(self):\n"
            "        self.recv_frame()\n"
        ),
    })
    assert project_targets(graph, "proto/saw.py::Saw.pull") == [
        "base/endpoint.py::Endpoint.recv_frame"
    ]
    chain = graph.mro("proto/saw.py::Saw")
    assert [cls.name for cls in chain] == ["Saw", "Endpoint"]
    resolved = graph.resolve_method("proto/saw.py::Saw", "recv_frame")
    assert resolved.qname == "base/endpoint.py::Endpoint.recv_frame"


def test_override_shadows_base_method(graph_of):
    graph = graph_of({
        "mod.py": (
            "class Base:\n"
            "    def step(self):\n        pass\n"
            "class Child(Base):\n"
            "    def step(self):\n        pass\n"
            "    def go(self):\n        self.step()\n"
        ),
    })
    assert project_targets(graph, "mod.py::Child.go") == [
        "mod.py::Child.step"
    ]


def test_construction_edges_into_init(graph_of):
    graph = graph_of({
        "machines.py": (
            "class Machine:\n"
            "    def __init__(self, seed):\n        self.seed = seed\n"
        ),
        "factory.py": (
            "from machines import Machine\n\n"
            "def make(seed):\n    return Machine(seed)\n"
        ),
    })
    calls = graph.functions["factory.py::make"].calls
    assert [(s.kind, s.target) for s in calls] == [
        ("construct", "machines.py::Machine"),
        ("project", "machines.py::Machine.__init__"),
    ]


def test_nested_defs_are_registered_and_linked(graph_of):
    graph = graph_of({
        "loop.py": (
            "def outer():\n"
            "    def inner():\n"
            "        deepest()\n"
            "    inner()\n\n"
            "def deepest():\n"
            "    pass\n"
        ),
    })
    assert "loop.py::outer.<locals>.inner" in graph.functions
    assert project_targets(graph, "loop.py::outer") == [
        "loop.py::outer.<locals>.inner"
    ]
    assert project_targets(graph, "loop.py::outer.<locals>.inner") == [
        "loop.py::deepest"
    ]


def test_external_and_attr_call_sites(graph_of):
    graph = graph_of({
        "helpers.py": (
            "import time\n\n"
            "def nap():\n    time.sleep(0.1)\n\n"
            "def drain(sock):\n    return sock.recv(4096)\n"
        ),
    })
    (site,) = graph.functions["helpers.py::nap"].calls
    assert (site.kind, site.target) == ("external", "time.sleep")
    (site,) = graph.functions["helpers.py::drain"].calls
    assert (site.kind, site.target) == ("attr", "recv")
    assert site.label() == ".recv()"


def test_find_chains_returns_shortest_witness(graph_of):
    graph = graph_of({
        "service/loop.py": (
            "from util.helpers import settle\n\n"
            "def poll():\n    settle()\n"
        ),
        "util/helpers.py": (
            "import time\n\n"
            "def nap():\n    time.sleep(0.01)\n\n"
            "def settle():\n    nap()\n"
        ),
    })
    chains = graph.find_chains(
        "service/loop.py::poll",
        lambda site, owner: site.kind == "external"
        and site.target == "time.sleep",
    )
    assert [chain for chain, _site in chains] == [
        (
            "service/loop.py::poll",
            "util/helpers.py::settle",
            "util/helpers.py::nap",
            "time.sleep",
        )
    ]


def test_recursion_and_inheritance_cycles_terminate(graph_of):
    graph = graph_of({
        "loop.py": (
            "class A(B):\n    pass\n"
            "class B(A):\n    def ping(self):\n        self.ping()\n"
        ),
    })
    assert [cls.name for cls in graph.mro("loop.py::A")] == ["A", "B"]
    reachable = graph.reachable(["loop.py::B.ping"])
    assert set(reachable) == {"loop.py::B.ping"}
    chains = graph.find_chains("loop.py::B.ping", lambda s, o: False)
    assert chains == []


def test_reachable_covers_transitive_closure(graph_of):
    graph = graph_of({
        "mod.py": (
            "def a():\n    b()\n\n"
            "def b():\n    c()\n\n"
            "def c():\n    pass\n\n"
            "def island():\n    pass\n"
        ),
    })
    reachable = graph.reachable(["mod.py::a"])
    assert set(reachable) == {"mod.py::a", "mod.py::b", "mod.py::c"}
    assert reachable["mod.py::c"] == "mod.py::b"
