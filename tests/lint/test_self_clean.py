"""CI guard: the repository's own tree must stay replint-clean forever.

This is the enforcement half of the determinism contract: any PR that
introduces an unseeded RNG, a wall-clock read in simulated code, an
unpicklable pool callable, … fails tier-1 right here (or carries an
explicit, justified ``# replint: disable=`` comment).
"""

from repro.lint import render_baseline, render_text, run_lint

from .conftest import REPO_ROOT

LINTED_ROOTS = [REPO_ROOT / "src", REPO_ROOT / "benchmarks"]
BASELINE = REPO_ROOT / "benchmarks" / "results" / "lint_baseline.txt"


def test_source_tree_is_replint_clean():
    result = run_lint(LINTED_ROOTS)
    assert result.clean, (
        "replint violations in the tree — fix them or add a justified "
        "'# replint: disable=' comment:\n" + render_text(result)
    )


def test_whole_tree_was_scanned():
    result = run_lint(LINTED_ROOTS)
    # Sanity-check the guard has teeth: the tree is ~90 files; a broken
    # file-discovery walk silently passing would defeat the test above.
    assert result.files_checked >= 60


def test_lint_baseline_file_is_current():
    result = run_lint(LINTED_ROOTS)
    expected = render_baseline(result)
    assert BASELINE.read_text() == expected, (
        "benchmarks/results/lint_baseline.txt is stale; regenerate with\n"
        "  PYTHONPATH=src python -m repro.lint "
        "--baseline benchmarks/results/lint_baseline.txt src benchmarks"
    )
