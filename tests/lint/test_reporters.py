"""Reporter output: text shape, JSON golden file, baseline ledger."""

import json
from pathlib import Path

from repro.lint import (
    render_baseline,
    render_json,
    render_text,
    run_lint,
)

from .conftest import GOLDEN


def _golden_result(monkeypatch):
    # chdir so diagnostic paths are stable, relative ones.
    monkeypatch.chdir(GOLDEN / "tree")
    return run_lint([Path(".")])


def test_text_report_has_file_line_rule_shape(monkeypatch):
    result = _golden_result(monkeypatch)
    text = render_text(result)
    assert "analysis/formulas.py:5:11: REP106" in text
    assert "hint:" in text
    assert "1 violation(s)" in text


def test_json_report_matches_golden_file(monkeypatch):
    result = _golden_result(monkeypatch)
    rendered = json.loads(render_json(result))
    golden = json.loads((GOLDEN / "report.json").read_text())
    assert rendered == golden, (
        "JSON report schema/content drifted from tests/lint/golden/"
        "report.json — if intentional, bump SCHEMA_VERSION and regenerate"
    )


def test_json_schema_keys_are_stable(monkeypatch):
    result = _golden_result(monkeypatch)
    payload = json.loads(render_json(result))
    assert set(payload) == {
        "schema",
        "schema_version",
        "files_checked",
        "suppressed",
        "counts",
        "violations",
    }
    assert payload["schema"] == "replint-report"
    (violation,) = payload["violations"]
    assert set(violation) == {
        "path",
        "line",
        "col",
        "rule",
        "severity",
        "message",
        "fix_hint",
    }


def test_json_reports_suppressed_count(monkeypatch):
    result = _golden_result(monkeypatch)
    assert result.suppressed == 1  # the disable=REP106 line in the fixture


def test_baseline_lists_every_rule_and_total(monkeypatch):
    result = _golden_result(monkeypatch)
    baseline = render_baseline(result)
    lines = [l for l in baseline.splitlines() if l and not l.startswith("#")]
    assert lines[-1] == "total 1"
    assert "REP106 1" in lines
    assert "REP101 0" in lines


def test_clean_text_report(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    result = run_lint([tmp_path])
    assert "clean" in render_text(result)
