"""Reporter output: text shape, JSON golden file, baseline ledger."""

import json
from pathlib import Path

import pytest

from repro.lint import (
    load_report,
    render_baseline,
    render_json,
    render_text,
    run_lint,
)

from .conftest import GOLDEN


def _golden_result(monkeypatch):
    # chdir so diagnostic paths are stable, relative ones.
    monkeypatch.chdir(GOLDEN / "tree")
    return run_lint([Path(".")])


def test_text_report_has_file_line_rule_shape(monkeypatch):
    result = _golden_result(monkeypatch)
    text = render_text(result)
    assert "analysis/formulas.py:5:11: REP106" in text
    assert "hint:" in text
    assert "3 violation(s)" in text


def test_json_report_matches_golden_file(monkeypatch):
    result = _golden_result(monkeypatch)
    rendered = json.loads(render_json(result))
    golden = json.loads((GOLDEN / "report.json").read_text())
    assert rendered == golden, (
        "JSON report schema/content drifted from tests/lint/golden/"
        "report.json — if intentional, bump SCHEMA_VERSION and regenerate"
    )


def test_json_schema_keys_are_stable(monkeypatch):
    result = _golden_result(monkeypatch)
    payload = json.loads(render_json(result))
    assert set(payload) == {
        "schema",
        "schema_version",
        "files_checked",
        "suppressed",
        "project_rules_skipped",
        "counts",
        "violations",
    }
    assert payload["schema"] == "replint-report"
    assert payload["schema_version"] == 2
    for violation in payload["violations"]:
        assert set(violation) == {
            "path",
            "line",
            "col",
            "rule",
            "severity",
            "message",
            "fix_hint",
            "family",
            "chain",
        }


def test_transitive_findings_carry_full_chain_witness(monkeypatch):
    result = _golden_result(monkeypatch)
    payload = json.loads(render_json(result))
    chains = {v["rule"]: v["chain"] for v in payload["violations"]}
    assert chains["REP112"] == [
        "service/pump.py::Pump.poll",
        "util/wrappers.py::settle",
        "time.sleep",
    ]
    assert chains["REP113"] == [
        "workloads/sizes.py::noisy",
        "benchmarks/noise.py::jitter",
        "random.random",
    ]
    assert chains["REP106"] == []  # direct findings have no chain


def test_load_report_accepts_current_golden():
    payload = load_report((GOLDEN / "report.json").read_text())
    assert payload["schema_version"] == 2
    assert payload["counts"]["REP112"] == 1


def test_load_report_rejects_v1_golden_loudly():
    v1_text = (GOLDEN / "report_v1.json").read_text()
    assert json.loads(v1_text)["schema_version"] == 1  # fixture sanity
    with pytest.raises(ValueError, match="schema_version=1"):
        load_report(v1_text)


def test_load_report_rejects_non_reports():
    with pytest.raises(ValueError, match="schema marker"):
        load_report('{"schema": "something-else", "schema_version": 2}')


def test_json_reports_suppressed_count(monkeypatch):
    result = _golden_result(monkeypatch)
    assert result.suppressed == 1  # the disable=REP106 line in the fixture


def test_baseline_lists_every_rule_and_total(monkeypatch):
    result = _golden_result(monkeypatch)
    baseline = render_baseline(result)
    lines = [l for l in baseline.splitlines() if l and not l.startswith("#")]
    assert lines[-1] == "total 3"
    assert "REP106 1" in lines
    assert "REP112 1" in lines
    assert "REP113 1" in lines
    assert "REP101 0" in lines


def test_clean_text_report(tmp_path):
    (tmp_path / "ok.py").write_text("x = 1\n")
    result = run_lint([tmp_path])
    assert "clean" in render_text(result)
