"""FSM extraction and the byte-stable machine × frame-kind matrix (REP114)."""

import subprocess
import sys
from pathlib import Path

from repro.lint.fsm import matrix_for_paths

from .conftest import REPO_ROOT

MATRIX_GOLDEN = REPO_ROOT / "benchmarks" / "results" / "fsm_matrix.txt"
ANALYSIS_PATHS = [REPO_ROOT / "src", REPO_ROOT / "benchmarks"]


def test_matrix_matches_golden_byte_for_byte():
    rendered = matrix_for_paths(ANALYSIS_PATHS)
    assert rendered == MATRIX_GOLDEN.read_text(), (
        "FSM matrix drifted from benchmarks/results/fsm_matrix.txt — "
        "if the protocol surface changed on purpose, regenerate with the "
        "command in the file header"
    )


def test_matrix_is_deterministic_across_runs():
    assert matrix_for_paths(ANALYSIS_PATHS) == matrix_for_paths(ANALYSIS_PATHS)


def test_matrix_covers_every_machine_and_kind():
    lines = MATRIX_GOLDEN.read_text().splitlines()
    rows = [l for l in lines if l and not l.startswith(("#", "machine"))]
    names = [row.split()[0] for row in rows]
    assert names == sorted(names)  # sorted by qualified name → stable diffs
    for expected in (
        "service/machines.py::BlastSenderMachine",
        "service/machines.py::ReceiverMachine",
        "service/machines.py::WindowSenderMachine",
        "udpnet/saw.py::SawSender",
        "udpnet/blast.py::BlastReceiver",
        "udpnet/sliding.py::SlidingWindowSender",
        "udpnet/fileserver.py::UdpFileServer",
    ):
        assert expected in names
    header = next(l for l in lines if l.startswith("machine"))
    assert header.split()[1:5] == ["DATA", "ACK", "NAK", "CONTROL"]
    # Every kind column is accounted for in every row: no "." cells left.
    for row in rows:
        assert "." not in row.split()[1:5], row
    assert lines[-1].endswith("uncovered=0")


def test_cli_writes_matrix_file(tmp_path):
    out = tmp_path / "matrix.txt"
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.lint",
            "--fsm-matrix",
            str(out),
            "src",
            "benchmarks",
        ],
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stderr
    assert "FSM matrix written" in proc.stdout
    assert out.read_text() == MATRIX_GOLDEN.read_text()
