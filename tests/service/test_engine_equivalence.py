"""Property suite: indexed ServiceCore ≡ the frozen full-table walker.

Random admit/frame/timer interleavings drive the live indexed engine
and :class:`repro.perf.legacy.LegacyServiceCore` in lockstep.  After
every operation both engines must agree on the emitted frames *and* on
``next_deadline`` — the two observables the substrates act on — and at
the end on the canonical metrics report and the finished-stream set.
This is the determinism contract the committed goldens and the
``service_sched_scale`` equivalence gate rely on.
"""

import json

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st

from repro.core.frames import ControlFrame
from repro.perf.legacy import LegacyServiceCore
from repro.service.engine import ServiceConfig, ServiceCore
from repro.service.machines import receiver_for

_PACKET_BYTES = 64
_CLIENTS = ("alpha", "beta", "gamma")

_OPS = st.one_of(
    st.tuples(st.just("admit"), st.sampled_from(_CLIENTS),
              st.integers(min_value=1, max_value=5)),
    st.tuples(st.just("poll")),
    st.tuples(st.just("drain"), st.integers(min_value=1, max_value=16)),
    st.tuples(st.just("advance"),
              st.sampled_from((0.001, 0.0103, 0.021, 0.047, 0.21))),
    st.tuples(st.just("deliver"), st.integers(min_value=0, max_value=7),
              st.sampled_from(("ok", "drop", "dup"))),
)


@settings(max_examples=60, deadline=None)
@given(
    protocol=st.sampled_from(("blast", "sliding", "saw")),
    policy=st.sampled_from(("fifo", "rr", "copy-budget")),
    ops=st.lists(_OPS, min_size=5, max_size=60),
)
def test_indexed_engine_matches_reference(protocol, policy, ops):
    config = ServiceConfig(protocol=protocol, policy=policy,
                           packet_bytes=_PACKET_BYTES, timeout_s=0.05,
                           max_active=3, max_queue=2, grants_per_poll=4)
    indexed = ServiceCore(config)
    reference = LegacyServiceCore(config)
    receivers = {}
    replies = []
    now = 0.0
    next_stream = 1

    def both(method, *args, **kwargs):
        live = getattr(indexed, method)(*args, **kwargs)
        frozen = getattr(reference, method)(*args, **kwargs)
        assert live == frozen, (method, args, live, frozen)
        return live

    def route(outputs):
        for frame, _client in outputs:
            receiver = receivers.get(frame.stream_id)
            if receiver is not None and hasattr(frame, "payload"):
                replies.extend(receiver.on_frame(frame, now))

    for item in ops:
        kind = item[0]
        if kind == "admit":
            _, client, packets = item
            stream_id = next_stream
            next_stream += 1
            body = json.dumps({"op": "pull", "size": _PACKET_BYTES * packets,
                               "stream": stream_id}, sort_keys=True)
            pull = ControlFrame(transfer_id=stream_id, request_id=stream_id,
                                body=body.encode(), stream_id=stream_id)
            outputs = both("on_frame", pull, now, client=client)
            if json.loads(outputs[0][0].body.decode())["status"] == "ok":
                receivers[stream_id] = receiver_for(protocol, stream_id)
        elif kind == "poll":
            route(both("poll", now))
        elif kind == "drain":
            route(both("drain_sends", now, item[1]))
        elif kind == "advance":
            now += item[1]
        else:  # deliver a pending receiver reply (maybe dropped/duplicated)
            _, index, mode = item
            if not replies:
                continue
            reply = replies.pop(index % len(replies))
            if mode == "drop":
                continue
            both("on_frame", reply, now)
            if mode == "dup":
                both("on_frame", reply, now)
        assert indexed.next_deadline(now) == reference.next_deadline(now)

    assert indexed.finished.keys() == reference.finished.keys()
    assert indexed.metrics.canonical_json() == reference.metrics.canonical_json()
