"""Loadgen tests: workload registry, sweep determinism, jobs invariance."""

import pytest

from repro.service.loadgen import (
    ScalingCell,
    _run_scaling_cell,
    make_sizes,
    run_des_loadgen,
    run_scaling_sweep,
)
from repro.workloads import make_arrivals


class TestWorkloadRegistry:
    def test_fixed_sizes(self):
        assert make_sizes("fixed", 3, size_bytes=2048) == [2048] * 3

    def test_paper_table_cycles(self):
        sizes = make_sizes("paper-table", 6)
        assert sizes[:4] == [1024, 4096, 16384, 65536]
        assert sizes[4] == 1024

    def test_seeded_workloads_deterministic(self):
        assert make_sizes("file-mix", 10, seed=3) == make_sizes(
            "file-mix", 10, seed=3)

    def test_unknown_workload(self):
        with pytest.raises(KeyError, match="unknown size workload"):
            make_sizes("mystery", 3)


class TestArrivals:
    def test_simultaneous_all_zero(self):
        assert make_arrivals("simultaneous", 4) == [0.0] * 4

    def test_uniform_spread(self):
        assert make_arrivals("uniform", 4, span_s=2.0) == [0.0, 0.5, 1.0, 1.5]

    def test_poisson_monotone_and_seeded(self):
        a = make_arrivals("poisson", 8, span_s=1.0, seed=5)
        assert a == sorted(a)
        assert a == make_arrivals("poisson", 8, span_s=1.0, seed=5)
        assert a != make_arrivals("poisson", 8, span_s=1.0, seed=6)

    def test_unknown_pattern(self):
        with pytest.raises(KeyError, match="unknown arrival pattern"):
            make_arrivals("bursty", 3)


class TestDesLoadgen:
    def test_runs_named_workloads(self):
        result = run_des_loadgen(4, sizes="paper-table", arrivals="uniform",
                                 span_s=0.2)
        assert result.ok and result.completed == 4

    def test_validates_client_count(self):
        with pytest.raises(ValueError):
            run_des_loadgen(0)


class TestScalingSweep:
    def test_cell_worker_is_deterministic(self):
        cell = ScalingCell(concurrency=4, protocol="blast", policy="rr")
        assert _run_scaling_cell(cell) == _run_scaling_cell(cell)

    def test_sweep_byte_identical_across_jobs(self):
        # The --jobs acceptance criterion, on a small grid: sharding the
        # cells across workers must not change a byte of the report.
        kwargs = dict(concurrencies=(1, 4), protocols=("blast",),
                      policies=("fifo", "rr"))
        serial = run_scaling_sweep(n_jobs=1, **kwargs)
        sharded = run_scaling_sweep(n_jobs=3, **kwargs)
        assert serial.report == sharded.report
        assert serial.cells == sharded.cells
        assert serial.all_ok
