"""Tests for the concurrent transfer service (repro.service)."""
