"""Loopback UDP service tests, including the 16-client fault-plan run.

Acceptance: the same scheduler core that drives the DES substrate must
pass a 16-client loopback UDP run under the builtin ``dup+reorder``
fault plan, every payload byte-verified client-side.
"""

import json
import threading
import time

import pytest

from repro.faults.plans import builtin_plan
from repro.service.clientpump import UdpClientPump
from repro.service.engine import ServiceConfig
from repro.service.loadgen import run_udp_loadgen
from repro.service.udpservice import UdpServiceClient, UdpTransferService


def run_service(config=None, clients=1, duration_s=20.0, **kwargs):
    """Start a service thread; returns (service, thread)."""
    service = UdpTransferService(config or ServiceConfig(), **kwargs)
    thread = threading.Thread(
        target=service.serve,
        kwargs={"expected_streams": clients, "duration_s": duration_s},
        daemon=True,
    )
    thread.start()
    return service, thread


class TestSingleClient:
    @pytest.mark.parametrize("protocol", ["blast", "sliding"])
    def test_pull_verifies_payload(self, protocol):
        config = ServiceConfig(protocol=protocol)
        service, thread = run_service(config)
        client = UdpServiceClient(service.address, protocol=protocol)
        try:
            result = client.pull(1, 8192)
        finally:
            client.sock.close()
        thread.join(timeout=25)
        report = json.loads(service.report_json())
        service.sock.close()
        assert result.ok and result.size_bytes == 8192
        assert report["summary"]["ok"] == 1

    def test_rejected_stream_reported(self):
        config = ServiceConfig(max_active=1, max_queue=0)
        service, thread = run_service(config, clients=2)
        blocker = UdpServiceClient(service.address)
        victim = UdpServiceClient(service.address)
        try:
            # Pull a large stream, then ask for a second while the
            # first still occupies the only active slot.  Wait until the
            # server has actually admitted the blocker before the victim
            # pulls — otherwise the two pull datagrams race for the slot.
            results = {}

            def hold():
                results["hold"] = blocker.pull(1, 256 * 1024)

            holder = threading.Thread(target=hold, daemon=True)
            holder.start()
            admit_deadline = time.monotonic() + 10.0
            while (service.core.active_count == 0
                   and time.monotonic() < admit_deadline):
                time.sleep(0.002)
            assert service.core.active_count == 1
            rejected = victim.pull(2, 1024)
            holder.join(timeout=25)
        finally:
            blocker.sock.close()
            victim.sock.close()
        service.stop()
        thread.join(timeout=25)
        service.sock.close()
        assert rejected.status == "rejected"
        assert results["hold"].ok


class TestConcurrentClients:
    def test_three_clients_loopback(self):
        result = run_udp_loadgen(3, duration_s=20.0)
        assert result.served and result.all_ok
        report = json.loads(result.report_json)
        assert report["summary"]["ok"] == 3

    def test_16_clients_under_dup_reorder(self):
        # The acceptance run: 16 concurrent clients, server socket
        # injecting the builtin dup+reorder plan in both directions.
        config = ServiceConfig(protocol="sliding", policy="rr",
                               max_active=8, max_queue=64)
        result = run_udp_loadgen(
            16, config=config, fault_plan=builtin_plan("dup+reorder"),
            fault_seed=11, duration_s=45.0, recv_timeout_s=8.0,
        )
        assert len(result.pulls) == 16
        assert result.all_ok, {
            s: (p.status, p.error) for s, p in result.pulls.items() if not p.ok
        }
        report = json.loads(result.report_json)
        assert report["summary"]["ok"] == 16
        assert report["summary"]["failed"] == 0


class TestCanonicalDeterminism:
    """The batched readiness loop must be outcome-deterministic."""

    @staticmethod
    def _canonical_run() -> str:
        config = ServiceConfig(protocol="sliding", policy="rr",
                               max_active=8, max_queue=64)
        service = UdpTransferService(
            config, fault_plan=builtin_plan("dup+reorder"), fault_seed=11)
        thread = threading.Thread(
            target=service.serve,
            kwargs={"expected_streams": 16, "duration_s": 45.0},
            daemon=True,
        )
        thread.start()
        pump = UdpClientPump(service.address, [8192] * 16,
                             protocol="sliding", recv_timeout_s=8.0)
        try:
            pulls = pump.run(overall_timeout_s=45.0)
        finally:
            service.stop()
            thread.join(timeout=10.0)
        canonical = service.canonical_report_json()
        service.sock.close()
        assert len(pulls) == 16 and all(p.ok for p in pulls.values()), {
            s: (p.status, p.error) for s, p in pulls.items() if not p.ok
        }
        return canonical

    def test_16_clients_dup_reorder_reports_are_byte_identical(self):
        # Two full 16-client runs under the builtin dup+reorder plan on
        # the batched loop: wall-clock jitter, batching boundaries, and
        # fault timing may all differ, but the canonical outcome
        # projection must not.
        first = self._canonical_run()
        second = self._canonical_run()
        assert first == second
        report = json.loads(first)
        assert report["summary"]["ok"] == 16
        assert report["summary"]["rejected"] == 0
        assert [t["stream"] for t in report["transfers"]] == list(range(1, 17))
