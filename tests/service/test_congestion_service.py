"""Congestion control threaded through the transfer service.

Three contracts:

1. **fixed preserves the seed behaviour** — a ``congestion="fixed"``
   run is byte-identical to the pre-congestion report format: no
   ``congestion`` key appears anywhere, and repeated runs reproduce the
   same bytes (the goldens pin the absolute values).
2. **reno reports its state** — every transfer row carries a snapshot
   with the cwnd/ssthresh/rto timeline, still deterministically.
3. **auto tunes per transfer** — the pull reply names the tuned
   protocol, clients follow it, and under injected loss the tuner
   migrates from the paper's blast to the congestion-controlled sliding
   window.
"""


from repro.congestion.sweep import SWEEP_TIMEOUT_S
from repro.service.engine import ServiceConfig
from repro.service.loadgen import run_des_loadgen
from repro.simnet.errors import BernoulliErrors


def _loadgen(congestion, loss=0.0, clients=6, protocol="sliding"):
    config = ServiceConfig(protocol=protocol, window=8,
                           congestion=congestion,
                           timeout_s=SWEEP_TIMEOUT_S, max_rounds=200)
    error_model = BernoulliErrors(loss, seed=11) if loss > 0 else None
    return run_des_loadgen(clients, config=config, size_bytes=16 * 1024,
                           arrivals="uniform", span_s=0.5,
                           error_model=error_model)


class TestFixedPreservesSeedBehaviour:
    def test_no_congestion_keys_in_fixed_report(self):
        result = _loadgen("fixed")
        assert result.ok
        for row in result.report["transfers"]:
            assert "congestion" not in row

    def test_fixed_runs_are_byte_identical(self):
        first = _loadgen("fixed", loss=0.02)
        second = _loadgen("fixed", loss=0.02)
        assert first.report_json == second.report_json

    def test_config_echo_names_the_controller(self):
        result = _loadgen("fixed")
        assert result.report["config"]["congestion"] == "fixed"


class TestRenoService:
    def test_snapshots_ride_the_report(self):
        result = _loadgen("reno", loss=0.02)
        assert result.ok
        rows = result.report["transfers"]
        assert rows
        for row in rows:
            snap = row["congestion"]
            assert snap["controller"] == "reno"
            assert snap["cwnd"] >= 1.0
            assert snap["ssthresh"] >= 2.0
            assert snap["timeline"][0]["event"] == "start"

    def test_reno_runs_are_byte_identical(self):
        first = _loadgen("reno", loss=0.02)
        second = _loadgen("reno", loss=0.02)
        assert first.report_json == second.report_json

    def test_loss_leaves_recovery_fingerprints(self):
        result = _loadgen("reno", loss=0.05, clients=8)
        assert result.ok
        events = [
            entry["event"]
            for row in result.report["transfers"]
            for entry in row["congestion"]["timeline"]
        ]
        # At 5% frame loss some transfer must have seen a loss event.
        assert any(e in ("fast_retx", "rto", "loss") for e in events)


class TestAutoTunedService:
    def test_clean_network_tunes_to_blast(self):
        result = _loadgen("auto")
        assert result.ok
        # On a clean LAN the tuner keeps the paper's choice: blast with
        # the fixed controller, so rows carry no reno snapshot.
        for row in result.report["transfers"]:
            assert "congestion" not in row

    def test_lossy_network_migrates_to_reno_sliding(self):
        result = _loadgen("auto", loss=0.05, clients=10)
        assert result.completed == 10
        snapshots = [
            row.get("congestion")
            for row in result.report["transfers"]
        ]
        # Early transfers teach the estimator; later ones must have been
        # moved onto the Reno-controlled sliding window.
        assert any(s and s["controller"] == "reno" for s in snapshots)

    def test_auto_runs_are_byte_identical(self):
        first = _loadgen("auto", loss=0.05)
        second = _loadgen("auto", loss=0.05)
        assert first.report_json == second.report_json

    def test_rejects_unknown_controller(self):
        import pytest

        with pytest.raises(ValueError):
            ServiceConfig(congestion="vegas")
