"""Unit tests for the batched zero-copy datagram I/O layer."""

import socket

import pytest

from repro.core import AckFrame, DataFrame, decode, encode
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.socket import FaultySocket
from repro.service.iobatch import BATCH_SLOTS, DatagramBatchIO


@pytest.fixture
def pair():
    """Two bound loopback sockets: (a, b)."""
    socks = []
    for _ in range(2):
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        sock.bind(("127.0.0.1", 0))
        socks.append(sock)
    yield socks
    for sock in socks:
        sock.close()


def _settle(sock, patience_s: float = 2.0) -> None:
    """Block until ``sock`` has at least one readable datagram."""
    import select

    ready, _, _ = select.select([sock.fileno()], [], [], patience_s)
    assert ready, "datagram never arrived on loopback"


class TestRecvBatch:
    def test_drains_queued_datagrams_in_order(self, pair):
        a, b = pair
        io = DatagramBatchIO(b, ring_slots=8)
        for index in range(5):
            a.sendto(b"datagram-%d" % index, b.getsockname())
        _settle(b)
        batch = io.recv_batch()
        # Loopback preserves order; all five were queued before the drain.
        assert [bytes(view) for view, _ in batch] == [
            b"datagram-%d" % index for index in range(5)
        ]
        assert all(sender == a.getsockname() for _, sender in batch)
        assert io.recv_batch() == []  # queue empty, never blocks

    def test_one_batch_caps_at_ring_slots(self, pair):
        a, b = pair
        io = DatagramBatchIO(b, ring_slots=3)
        for index in range(7):
            a.sendto(bytes([index]), b.getsockname())
        _settle(b)
        first = io.recv_batch()
        assert len(first) == 3
        rest = io.recv_batch() + io.recv_batch()
        assert len(first) + len(rest) == 7
        assert io.datagrams_in == 7
        assert io.recv_batches == 3

    def test_views_alias_the_ring_until_next_batch(self, pair):
        a, b = pair
        io = DatagramBatchIO(b, ring_slots=2)
        a.sendto(b"first", b.getsockname())
        _settle(b)
        (view, _sender), = io.recv_batch()
        held = bytes(view)  # decode() copies out exactly like this
        a.sendto(b"other", b.getsockname())
        _settle(b)
        io.recv_batch()  # ring slot 0 is overwritten here
        assert held == b"first"
        assert bytes(view) == b"other"


class TestSend:
    def test_send_frame_matches_encode_bytes(self, pair):
        a, b = pair
        io = DatagramBatchIO(a, ring_slots=1)
        for frame in (DataFrame(7, 3, 10, b"hello", stream_id=4),
                      AckFrame(9, seq=63)):
            sent = io.send_frame(frame, b.getsockname())
            _settle(b)
            datagram, _ = b.recvfrom(65536)
            assert datagram == encode(frame)
            assert sent == len(datagram)
            decoded = decode(datagram)
            assert type(decoded) is type(frame)
        assert io.datagrams_out == 2

    def test_send_buffer_reuse_does_not_bleed_between_frames(self, pair):
        a, b = pair
        io = DatagramBatchIO(a, ring_slots=1)
        big = DataFrame(1, 0, 2, b"x" * 1000, stream_id=2)
        small = DataFrame(1, 1, 2, b"y" * 10, stream_id=2)
        io.send_frame(big, b.getsockname())
        io.send_frame(small, b.getsockname())
        _settle(b)
        first, _ = b.recvfrom(65536)
        second, _ = b.recvfrom(65536)
        assert first == encode(big)
        assert second == encode(small)  # no tail of the big frame

    def test_send_datagram_passes_bytes_through(self, pair):
        a, b = pair
        io = DatagramBatchIO(a, ring_slots=1)
        payload = b"pre-encoded control request"
        assert io.send_datagram(payload, b.getsockname()) == len(payload)
        _settle(b)
        assert b.recvfrom(65536)[0] == payload


class TestConstruction:
    def test_rejects_empty_ring(self, pair):
        with pytest.raises(ValueError, match="ring_slots"):
            DatagramBatchIO(pair[0], ring_slots=0)

    def test_rejects_empty_slots(self, pair):
        with pytest.raises(ValueError, match="slot_bytes"):
            DatagramBatchIO(pair[0], slot_bytes=0)

    def test_default_ring_is_batch_slots(self, pair):
        io = DatagramBatchIO(pair[0])
        assert len(io._slots) == BATCH_SLOTS

    def test_plain_socket_has_no_fault_hooks(self, pair):
        io = DatagramBatchIO(pair[0])
        assert io.has_ready is False
        assert io.next_held_due() is None
        assert io.flush_held() == 0


class TestFaultComposition:
    """The batch layer must route through FaultySocket's plan hooks."""

    def _wrap(self, sock, rules):
        plan = FaultPlan(name="test", rules=tuple(rules),
                         description="iobatch test plan")
        return FaultySocket(sock, plan=plan, seed=7)

    def test_recv_duplicate_plan_yields_both_copies(self, pair):
        a, b = pair
        frame = DataFrame(3, 0, 1, b"payload", stream_id=1)
        faulty = self._wrap(b, [FaultRule(action="duplicate", kinds=("data",),
                                          direction="recv", first=0, last=0,
                                          count=1)])
        io = DatagramBatchIO(faulty, ring_slots=4)
        a.sendto(encode(frame), b.getsockname())
        _settle(b)
        batch = io.recv_batch()
        assert len(batch) == 2
        assert all(bytes(view) == encode(frame) for view, _ in batch)

    def test_recv_delay_holds_then_flushes(self, pair):
        a, b = pair
        frame = DataFrame(3, 0, 1, b"late", stream_id=1)
        faulty = self._wrap(b, [FaultRule(action="delay", kinds=("data",),
                                          direction="recv", indices=(0,),
                                          delay_s=30.0)])
        io = DatagramBatchIO(faulty, ring_slots=4)
        a.sendto(encode(frame), b.getsockname())
        _settle(b)
        assert io.recv_batch() == []          # held by the plan, not lost
        assert io.next_held_due() is not None  # bounds the loop's poll wait
        assert io.flush_held() == 1            # deadline-expiry release
        assert io.has_ready
        (view, _sender), = io.recv_batch()
        assert bytes(view) == encode(frame)

    def test_drop_plan_swallows_datagram(self, pair):
        a, b = pair
        frame = DataFrame(3, 0, 1, b"doomed", stream_id=1)
        faulty = self._wrap(b, [FaultRule(action="drop", kinds=("data",),
                                          direction="recv", first=0, last=0)])
        io = DatagramBatchIO(faulty, ring_slots=4)
        a.sendto(encode(frame), b.getsockname())
        _settle(b)
        assert io.recv_batch() == []
        assert faulty.recv_dropped == 1
