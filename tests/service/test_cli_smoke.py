"""End-to-end CLI smoke test: ``repro serve`` + ``repro loadgen``.

Spawns the real console entry points as subprocesses on loopback — the
exact flow CI exercises — with hard timeouts so a wedged event loop
fails the test instead of hanging the suite.
"""

import json
import re
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")
SMOKE_TIMEOUT_S = 60


class TestParser:
    def test_serve_flags(self):
        args = build_parser().parse_args(
            ["serve", "--once", "3", "--policy", "rr", "--report", "json"])
        assert args.once == 3 and args.policy == "rr"
        assert args.report == "json" and args.port == 0

    def test_loadgen_flags(self):
        args = build_parser().parse_args(
            ["loadgen", "--mode", "udp", "--clients", "16",
             "--server", "127.0.0.1:47000", "--size", "4K"])
        assert args.mode == "udp" and args.clients == 16
        assert args.server == "127.0.0.1:47000" and args.size == 4096

    def test_loadgen_defaults_to_des(self):
        args = build_parser().parse_args(["loadgen"])
        assert args.mode == "des" and args.arrivals == "simultaneous"

    def test_bad_policy_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--policy", "lottery"])


def _run(argv, **kwargs):
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
        capture_output=True, text=True, timeout=SMOKE_TIMEOUT_S, **kwargs,
    )


class TestServeLoadgenSmoke:
    def test_three_client_loopback_end_to_end(self, tmp_path):
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--once", "3",
             "--report", "json"],
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"serving on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no banner in {banner!r}"
            port = match.group(1)

            loadgen = _run(["loadgen", "--mode", "udp", "--clients", "3",
                            "--server", f"127.0.0.1:{port}"])
            assert loadgen.returncode == 0, loadgen.stdout + loadgen.stderr
            assert loadgen.stdout.count("payload_ok=True") == 3

            out, err = server.communicate(timeout=SMOKE_TIMEOUT_S)
            assert server.returncode == 0, out + err
            report = json.loads(out)
            assert report["summary"]["ok"] == 3
            assert report["summary"]["failed"] == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)

    def test_sigterm_drains_and_prints_final_report(self):
        # Graceful shutdown: SIGTERM must drain in-flight grants and
        # still emit the final metrics report before exiting 0.
        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--report", "json"],
            env={"PYTHONPATH": REPO_SRC, "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            banner = server.stdout.readline()
            match = re.search(r"serving on 127\.0\.0\.1:(\d+)", banner)
            assert match, f"no banner in {banner!r}"
            port = match.group(1)

            loadgen = _run(["loadgen", "--mode", "udp", "--clients", "2",
                            "--server", f"127.0.0.1:{port}"])
            assert loadgen.returncode == 0, loadgen.stdout + loadgen.stderr

            server.terminate()  # SIGTERM, not SIGKILL
            out, err = server.communicate(timeout=SMOKE_TIMEOUT_S)
            assert server.returncode == 0, out + err
            report = json.loads(out)
            assert report["summary"]["ok"] == 2
            assert report["summary"]["failed"] == 0
        finally:
            if server.poll() is None:
                server.kill()
                server.wait(timeout=10)

    def test_cluster_cli_des_check_roundtrip(self, tmp_path):
        ledger = tmp_path / "ledger.txt"
        wrote = _run(["cluster", "--mode", "des", "--flows", "64",
                      "--out", str(ledger)])
        assert wrote.returncode == 0, wrote.stdout + wrote.stderr
        assert ledger.exists()
        checked = _run(["cluster", "--mode", "des", "--flows", "64",
                        "--check", str(ledger)])
        assert checked.returncode == 0, checked.stdout + checked.stderr

    def test_des_loadgen_cli_json_report(self):
        result = _run(["loadgen", "--clients", "4", "--report", "json"])
        assert result.returncode == 0, result.stdout + result.stderr
        report = json.loads(result.stdout)
        assert report["summary"]["ok"] == 4
