"""Unit tests for ServiceCore: admission, control protocol, demux."""

import json

import pytest

from repro.core.frames import AckFrame, ControlFrame
from repro.service.engine import ServiceConfig, ServiceCore


def pull_frame(stream_id, size, request_id=None, client="c"):
    body = {"client": client, "op": "pull", "size": size, "stream": stream_id}
    return ControlFrame(
        transfer_id=0,
        request_id=request_id if request_id is not None else stream_id,
        body=json.dumps(body, sort_keys=True).encode(),
    )


def reply_body(outputs):
    (frame, _client), = outputs
    return json.loads(frame.body.decode())


class TestConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.protocol == "blast" and config.policy == "fifo"

    def test_rejects_unknown_protocol(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            ServiceConfig(protocol="tcp")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            ServiceConfig(max_active=0)
        with pytest.raises(ValueError):
            ServiceConfig(timeout_s=0.0)

    def test_to_dict_echoes_policy(self):
        assert ServiceConfig(policy="rr").to_dict()["policy"] == "rr"


class TestControlProtocol:
    def test_pull_activates_and_replies_ok(self):
        core = ServiceCore()
        outputs = core.on_frame(pull_frame(1, 4096), 0.0, client="c")
        body = reply_body(outputs)
        assert body["status"] == "ok" and body["stream"] == 1
        assert body["packets"] == 4 and body["seed"] == core.config.seed
        assert core.active_count == 1

    def test_duplicate_pull_replays_cached_response(self):
        core = ServiceCore()
        first = reply_body(core.on_frame(pull_frame(1, 4096), 0.0, client="c"))
        again = reply_body(core.on_frame(pull_frame(1, 4096), 0.5, client="c"))
        assert first == again
        assert core.active_count == 1  # not re-activated

    def test_queue_then_reject_when_full(self):
        core = ServiceCore(ServiceConfig(max_active=1, max_queue=1))
        assert reply_body(core.on_frame(pull_frame(1, 1024), 0.0))["status"] == "ok"
        assert reply_body(core.on_frame(pull_frame(2, 1024), 0.0))["status"] == "ok"
        rejected = reply_body(core.on_frame(pull_frame(3, 1024), 0.0))
        assert rejected["status"] == "rejected"
        assert rejected["reason"] == "queue full"
        assert core.pending_count == 1
        assert len(core.metrics.rejections) == 1

    def test_rejection_is_sticky_on_duplicate(self):
        core = ServiceCore(ServiceConfig(max_active=1, max_queue=0))
        core.on_frame(pull_frame(1, 1024), 0.0)
        first = reply_body(core.on_frame(pull_frame(2, 1024), 0.0))
        again = reply_body(core.on_frame(pull_frame(2, 1024), 1.0))
        assert first["status"] == again["status"] == "rejected"
        assert len(core.metrics.rejections) == 1  # not double-counted

    def test_bad_stream_and_size_rejected(self):
        core = ServiceCore()
        assert reply_body(core.on_frame(pull_frame(0, 10), 0.0))["status"] == "error"
        too_big = core.config.max_size_bytes + 1
        assert reply_body(core.on_frame(pull_frame(1, too_big), 0.0))["status"] == "error"

    def test_unknown_op_gets_error_reply(self):
        frame = ControlFrame(transfer_id=0, request_id=9,
                             body=json.dumps({"op": "push"}).encode())
        body = reply_body(ServiceCore().on_frame(frame, 0.0))
        assert body["status"] == "error"

    def test_malformed_body_ignored(self):
        frame = ControlFrame(transfer_id=0, request_id=9, body=b"\xff\xfe")
        assert ServiceCore().on_frame(frame, 0.0) == []


class TestSchedulingAndCompletion:
    def test_poll_grants_frames_to_client(self):
        core = ServiceCore()
        core.on_frame(pull_frame(1, 2048), 0.0, client="c")
        outputs = core.poll(0.0)
        assert outputs and all(client == "c" for _, client in outputs)
        assert all(frame.stream_id == 1 for frame, _ in outputs)

    def test_ack_completes_and_admits_from_queue(self):
        core = ServiceCore(ServiceConfig(max_active=1, max_queue=4))
        core.on_frame(pull_frame(1, 1024), 0.0, client="a")
        core.on_frame(pull_frame(2, 1024), 0.0, client="b")
        assert core.pending_count == 1
        list(core.poll(0.0))
        core.on_frame(AckFrame(transfer_id=1, seq=0, stream_id=1), 0.01)
        assert core.finished_count == 1
        assert core.active_count == 1 and core.pending_count == 0
        assert core.finished[1].ok

    def test_ack_for_unknown_stream_ignored(self):
        core = ServiceCore()
        assert core.on_frame(AckFrame(transfer_id=9, seq=0, stream_id=9),
                             0.0) == []

    def test_next_deadline_none_when_idle(self):
        core = ServiceCore()
        assert core.next_deadline(0.0) is None

    def test_next_deadline_now_when_sendable(self):
        core = ServiceCore()
        core.on_frame(pull_frame(1, 2048), 0.0)
        assert core.next_deadline(0.0) == 0.0

    def test_report_includes_config_echo(self):
        core = ServiceCore(ServiceConfig(policy="rr"))
        report = json.loads(core.report_json())
        assert report["config"]["policy"] == "rr"
        assert report["schema_version"] == 1


class TestSchedulingIndexes:
    def test_rr_rotation_purges_finished_clients(self):
        core = ServiceCore(ServiceConfig(policy="rr", max_active=8))
        for stream_id, client in ((1, "a"), (2, "b"), (3, "c")):
            core.on_frame(pull_frame(stream_id, 1024, client=client), 0.0,
                          client=client)
        core.poll(0.0)
        core.on_frame(AckFrame(transfer_id=1, seq=0, stream_id=1), 0.01)
        assert core.finished_count == 1
        # Rotation state is O(live clients): the finished client is gone
        # from the count and from the rebuilt position index.
        assert "a" not in core._client_streams
        assert core._view.client_count() == 2
        assert set(core._view.client_positions()) == {"b", "c"}

    def test_rotation_index_drops_fully_drained_service(self):
        core = ServiceCore(ServiceConfig(policy="rr", max_active=4))
        core.on_frame(pull_frame(1, 1024, client="a"), 0.0, client="a")
        core.poll(0.0)
        core.on_frame(AckFrame(transfer_id=1, seq=0, stream_id=1), 0.01)
        assert core.idle
        assert core._client_streams == {}
        assert core._view.client_positions() == {}

    def test_drain_sends_advances_timers_once_per_batch(self):
        core = ServiceCore(ServiceConfig(protocol="sliding", window=2,
                                         timeout_s=0.05, grants_per_poll=1,
                                         max_active=4))
        core.on_frame(pull_frame(1, 4096), 0.0, client="a")
        assert len(core.drain_sends(0.0, 8)) == 2  # window-limited
        counts = {}
        for stream_id, entry in core._active.items():
            original = entry.machine.poll

            def wrapped(now, _original=original, _sid=stream_id):
                counts[_sid] = counts.get(_sid, 0) + 1
                return _original(now)

            entry.machine.poll = wrapped
        retx = core.drain_sends(0.1, 8)  # past the retransmit deadline
        assert len(retx) == 2
        assert counts == {1: 1}  # one timer pass for the whole batch

    def test_deadline_heap_stays_bounded(self):
        core = ServiceCore(ServiceConfig(protocol="saw", packet_bytes=64,
                                         max_active=4, grants_per_poll=8))
        core.on_frame(pull_frame(1, 64 * 64), 0.0, client="a")
        now = 0.0
        for _ in range(200):
            outputs = core.poll(now)
            now += 0.001
            for frame, _client in outputs:
                core.on_frame(AckFrame(transfer_id=1, seq=frame.seq,
                                       stream_id=1), now)
            if core.finished_count:
                break
        assert core.finished_count == 1 and core.idle
        assert not core._ready
        assert len(core._deadline_heap) <= 2 * len(core._active) + 64
