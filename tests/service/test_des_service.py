"""DES-substrate service tests, including the 64-stream acceptance run.

The acceptance criteria this file pins down: a single service endpoint
completes 64 concurrent transfers with byte-identical payloads, and the
metrics report is byte-identical across repeated runs (the loadgen
sweep test separately pins ``--jobs`` invariance).
"""

import pytest

from repro.faults.scripted import ScriptedErrors
from repro.faults.plans import builtin_plan
from repro.service.engine import ServiceConfig
from repro.service.simservice import run_des_service
from repro.workloads import make_arrivals


class TestBasicRuns:
    @pytest.mark.parametrize("protocol", ["blast", "sliding", "saw"])
    def test_single_stream_completes(self, protocol):
        result = run_des_service([4096],
                                 config=ServiceConfig(protocol=protocol))
        assert result.ok and result.completed == 1
        assert result.client_status == {1: "ok"}

    @pytest.mark.parametrize("policy", ["fifo", "rr", "copy-budget"])
    def test_concurrent_streams_each_policy(self, policy):
        result = run_des_service([4096] * 8,
                                 config=ServiceConfig(policy=policy))
        assert result.ok and result.completed == 8

    def test_mixed_sizes(self):
        result = run_des_service([100, 4096, 16384])
        assert result.ok
        rows = {r["stream"]: r for r in result.report["transfers"]}
        assert rows[1]["bytes"] == 100 and rows[3]["bytes"] == 16384

    def test_staggered_arrivals(self):
        arrivals = make_arrivals("poisson", 6, span_s=0.5, seed=3)
        result = run_des_service([4096] * 6, arrivals=arrivals)
        assert result.ok and result.completed == 6

    def test_input_validation(self):
        with pytest.raises(ValueError):
            run_des_service([])
        with pytest.raises(ValueError):
            run_des_service([1024], arrivals=[0.0, 0.0])


class TestAdmissionControl:
    def test_overflow_is_rejected_not_dropped(self):
        config = ServiceConfig(max_active=4, max_queue=2)
        result = run_des_service([2048] * 10, config=config)
        assert result.completed == 6 and result.rejected == 4
        statuses = set(result.client_status.values())
        assert statuses == {"ok", "rejected"}
        assert result.ok  # rejected clients got an explicit verdict

    def test_queue_depth_recorded(self):
        config = ServiceConfig(max_active=2, max_queue=16)
        result = run_des_service([2048] * 10, config=config)
        assert result.ok
        assert result.report["summary"]["max_queue_depth"] >= 1
        assert all(r["queue_wait_s"] >= 0.0
                   for r in result.report["transfers"])


class TestAcceptance64:
    def test_64_concurrent_byte_identical_and_reproducible(self):
        config = ServiceConfig(max_active=8, max_queue=64)
        first = run_des_service([4096] * 64, config=config)
        assert first.ok and first.completed == 64 and first.rejected == 0
        assert first.payloads_ok  # every payload byte-verified client-side
        assert first.report["summary"]["failed"] == 0
        # Repeated run: the metrics report must be byte-identical.
        second = run_des_service([4096] * 64, config=config)
        assert second.report_json == first.report_json


class TestUnderFaults:
    def test_completes_under_dup_reorder_plan(self):
        plan = builtin_plan("dup+reorder")
        result = run_des_service(
            [4096] * 4, config=ServiceConfig(protocol="sliding"),
            error_model=ScriptedErrors(plan, seed=5),
        )
        assert result.ok and result.completed == 4

    def test_deterministic_under_faults(self):
        plan = builtin_plan("dup-burst")
        runs = [
            run_des_service([4096] * 3,
                            error_model=ScriptedErrors(plan, seed=2))
            for _ in range(2)
        ]
        assert runs[0].report_json == runs[1].report_json
