"""Unit tests for the substrate-free per-transfer state machines."""

import pytest

from repro.core.frames import AckFrame, DataFrame, NakFrame
from repro.service.machines import (
    BlastSenderMachine,
    ReceiverMachine,
    WindowSenderMachine,
    make_sender_machine,
    receiver_for,
    service_payload,
)


def drain(machine, now):
    frames = []
    while machine.has_frame(now):
        frames.append(machine.next_frame(now))
    return frames


class TestServicePayload:
    def test_deterministic(self):
        assert service_payload(7, 3, 1024) == service_payload(7, 3, 1024)

    def test_streams_differ(self):
        assert service_payload(7, 1, 1024) != service_payload(7, 2, 1024)

    def test_seeds_differ(self):
        assert service_payload(7, 1, 1024) != service_payload(8, 1, 1024)

    def test_size(self):
        assert len(service_payload(0, 1, 300)) == 300


class TestBlastSender:
    def test_clean_round_completes(self):
        machine = BlastSenderMachine(1, bytes(3000), 1024, timeout_s=0.1)
        frames = drain(machine, 0.0)
        assert [f.seq for f in frames] == [0, 1, 2]
        assert [f.wants_reply for f in frames] == [False, False, True]
        assert all(f.stream_id == 1 for f in frames)
        machine.on_frame(AckFrame(transfer_id=1, seq=2, stream_id=1), 0.01)
        assert machine.done and machine.outcome().ok
        assert machine.outcome().retransmits == 0

    def test_timeout_triggers_new_round(self):
        machine = BlastSenderMachine(1, bytes(2048), 1024, timeout_s=0.1)
        drain(machine, 0.0)
        assert machine.next_deadline() == pytest.approx(0.1)
        machine.poll(0.2)
        assert machine.rounds == 2
        frames = drain(machine, 0.2)
        assert frames and machine.retransmits == len(frames)

    def test_nak_selective_resends_missing_only(self):
        machine = BlastSenderMachine(1, bytes(4096), 1024, timeout_s=0.1,
                                     strategy="selective")
        drain(machine, 0.0)
        machine.on_frame(
            NakFrame(transfer_id=1, first_missing=1, missing=(1, 3), total=4,
                     stream_id=1),
            0.01,
        )
        frames = drain(machine, 0.01)
        assert sorted(f.seq for f in frames) == [1, 3]

    def test_round_cap_fails_transfer(self):
        machine = BlastSenderMachine(1, bytes(1024), 1024, timeout_s=0.1,
                                     max_rounds=2)
        now = 0.0
        for _ in range(3):
            drain(machine, now)
            now += 0.2
            machine.poll(now)
            if machine.finished:
                break
        assert machine.failed
        assert "gave up" in machine.outcome().error

    def test_empty_payload_is_one_packet(self):
        machine = BlastSenderMachine(1, b"", 1024, timeout_s=0.1)
        frames = drain(machine, 0.0)
        assert len(frames) == 1 and frames[0].payload == b""

    def test_rejects_stream_zero(self):
        with pytest.raises(ValueError):
            BlastSenderMachine(0, b"x", 1024, timeout_s=0.1)


class TestWindowSender:
    def test_window_limits_outstanding(self):
        machine = WindowSenderMachine(1, bytes(8192), 1024, timeout_s=0.1,
                                      window=3)
        frames = drain(machine, 0.0)
        assert len(frames) == 3
        machine.on_frame(AckFrame(transfer_id=1, seq=0, stream_id=1), 0.01)
        assert machine.frames_available(0.01) == 1

    def test_completes_on_all_acks(self):
        machine = WindowSenderMachine(1, bytes(2048), 1024, timeout_s=0.1,
                                      window=4)
        frames = drain(machine, 0.0)
        for frame in frames:
            machine.on_frame(AckFrame(transfer_id=1, seq=frame.seq,
                                      stream_id=1), 0.01)
        assert machine.done and machine.outcome().ok

    def test_overdue_packet_retransmits_first(self):
        machine = WindowSenderMachine(1, bytes(4096), 1024, timeout_s=0.1,
                                      window=2)
        drain(machine, 0.0)  # seq 0, 1 outstanding
        frames = drain(machine, 0.15)
        assert frames[0].seq == 0 and machine.retransmits >= 1

    def test_attempt_cap_fails(self):
        machine = WindowSenderMachine(1, bytes(1024), 1024, timeout_s=0.1,
                                      max_rounds=2, window=1)
        now = 0.0
        for _ in range(5):
            machine.poll(now)
            if machine.finished:
                break
            drain(machine, now)
            now += 0.2
        assert machine.failed

    def test_saw_is_window_one(self):
        machine = make_sender_machine("saw", 1, bytes(4096), 1024,
                                      timeout_s=0.1)
        assert isinstance(machine, WindowSenderMachine)
        assert machine.window == 1
        assert len(drain(machine, 0.0)) == 1

    def test_unknown_protocol(self):
        with pytest.raises(ValueError):
            make_sender_machine("carrier-pigeon", 1, b"", 1024, timeout_s=0.1)


class TestReceiverMachine:
    def test_blast_replies_only_on_wants_reply(self):
        receiver = receiver_for("blast", 5)
        payload = service_payload(7, 5, 2048)
        f0 = DataFrame(transfer_id=5, seq=0, total=2, payload=payload[:1024],
                       stream_id=5)
        f1 = DataFrame(transfer_id=5, seq=1, total=2, payload=payload[1024:],
                       wants_reply=True, stream_id=5)
        assert receiver.on_frame(f0, 0.0) == []
        replies = receiver.on_frame(f1, 0.0)
        assert len(replies) == 1 and isinstance(replies[0], AckFrame)
        assert replies[0].seq == 1
        assert receiver.done and receiver.data == payload

    def test_blast_naks_when_incomplete(self):
        receiver = receiver_for("blast", 5, strategy="selective")
        f1 = DataFrame(transfer_id=5, seq=1, total=3, payload=b"b" * 10,
                       wants_reply=True, stream_id=5)
        replies = receiver.on_frame(f1, 0.0)
        assert len(replies) == 1 and isinstance(replies[0], NakFrame)
        assert 0 in replies[0].missing and 2 in replies[0].missing

    def test_timer_only_strategy_stays_silent(self):
        receiver = receiver_for("blast", 5, strategy="full_no_nak")
        f1 = DataFrame(transfer_id=5, seq=1, total=3, payload=b"b",
                       wants_reply=True, stream_id=5)
        assert receiver.on_frame(f1, 0.0) == []

    def test_sliding_acks_every_frame(self):
        receiver = receiver_for("sliding", 5)
        frame = DataFrame(transfer_id=5, seq=0, total=2, payload=b"a",
                          stream_id=5)
        assert len(receiver.on_frame(frame, 0.0)) == 1

    def test_duplicate_counted_and_reacked(self):
        receiver = receiver_for("sliding", 5)
        frame = DataFrame(transfer_id=5, seq=0, total=1, payload=b"a",
                          stream_id=5)
        receiver.on_frame(frame, 0.0)
        replies = receiver.on_frame(frame, 0.1)
        assert receiver.duplicates == 1 and len(replies) == 1

    def test_other_stream_ignored(self):
        receiver = receiver_for("sliding", 5)
        frame = DataFrame(transfer_id=6, seq=0, total=1, payload=b"a",
                          stream_id=6)
        assert receiver.on_frame(frame, 0.0) == []
        assert receiver.tracker is None


class TestFrameCacheAndTimerEpoch:
    def test_retransmission_reuses_cached_frame(self):
        machine = WindowSenderMachine(1, bytes(4096), 1024, timeout_s=0.1,
                                      window=2)
        first = drain(machine, 0.0)
        retx = drain(machine, 0.15)
        # DataFrame is an immutable value: the retransmit chunk cache
        # hands back the very frame built the first time.
        assert retx[0] is first[0]

    def test_cache_does_not_skew_send_accounting(self):
        machine = WindowSenderMachine(1, bytes(2048), 1024, timeout_s=0.1,
                                      window=1)
        drain(machine, 0.0)
        drain(machine, 0.15)
        assert machine.data_frames_sent == 2 and machine.retransmits == 1

    def test_window_epoch_moves_with_deadlines(self):
        machine = WindowSenderMachine(1, bytes(2048), 1024, timeout_s=0.1,
                                      window=2)
        epoch = machine.timer_epoch
        drain(machine, 0.0)  # outstanding deadlines appear
        assert machine.timer_epoch > epoch
        epoch = machine.timer_epoch
        machine.on_frame(AckFrame(transfer_id=1, seq=0, stream_id=1), 0.01)
        assert machine.timer_epoch > epoch  # earliest deadline moved

    def test_blast_epoch_moves_on_round_boundaries(self):
        machine = BlastSenderMachine(1, bytes(2048), 1024, timeout_s=0.1)
        epoch = machine.timer_epoch
        drain(machine, 0.0)  # last frame of the round arms the reply timer
        assert machine.timer_epoch > epoch
        epoch = machine.timer_epoch
        machine.poll(0.2)  # reply timeout: next round starts, timer re-arms
        assert machine.timer_epoch > epoch
