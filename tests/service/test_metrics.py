"""Unit tests for the metrics layer and its byte-stable export."""

import json

import pytest

from repro.service.machines import TransferOutcome
from repro.service.metrics import ServiceMetrics, percentile


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_nearest_rank(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0.50) == 2.0
        assert percentile(values, 0.99) == 4.0
        assert percentile(values, 0.25) == 1.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            percentile([1.0], 0.0)


def outcome(stream_id, ok=True, **kwargs):
    defaults = dict(size_bytes=1024, packets=1, data_frames_sent=1,
                    retransmits=0, rounds=1, error="")
    defaults.update(kwargs)
    return TransferOutcome(stream_id=stream_id, ok=ok, **defaults)


class TestServiceMetrics:
    def test_lifecycle_summary(self):
        metrics = ServiceMetrics()
        metrics.on_submitted(1, "a", 0.0)
        metrics.on_started(1, 0.1)
        metrics.on_finished(1, outcome(1), 0.5)
        metrics.on_rejected(2, "b", "queue full", 0.2)
        summary = metrics.summary()
        assert summary["transfers"] == 1 and summary["ok"] == 1
        assert summary["rejected"] == 1
        assert summary["p50_completion_s"] == pytest.approx(0.5)
        assert summary["makespan_s"] == pytest.approx(0.5)
        assert summary["goodput_bytes_per_s"] == pytest.approx(1024 / 0.5)

    def test_failed_transfer_counted(self):
        metrics = ServiceMetrics()
        metrics.on_submitted(1, "a", 0.0)
        metrics.on_started(1, 0.0)
        metrics.on_finished(1, outcome(1, ok=False, error="gave up"), 1.0)
        summary = metrics.summary()
        assert summary["failed"] == 1 and summary["ok"] == 0
        assert summary["bytes"] == 0  # failed bytes don't count as goodput

    def test_queue_depth_coalesces_same_timestamp(self):
        metrics = ServiceMetrics()
        metrics.on_queue_depth(1.0, 3)
        metrics.on_queue_depth(1.0, 5)
        metrics.on_queue_depth(2.0, 1)
        assert metrics.queue_depth == [(1.0, 5), (2.0, 1)]
        assert metrics.summary()["max_queue_depth"] == 5

    def test_json_export_is_byte_stable(self):
        def build():
            metrics = ServiceMetrics()
            metrics.on_submitted(2, "b", 0.0)
            metrics.on_submitted(1, "a", 0.0)
            metrics.on_started(1, 0.1)
            metrics.on_finished(1, outcome(1), 0.123456789123)
            return metrics.to_json({"policy": "fifo"})

        assert build() == build()
        assert build().endswith("\n")

    def test_transfers_sorted_by_stream(self):
        metrics = ServiceMetrics()
        metrics.on_submitted(2, "b", 0.0)
        metrics.on_submitted(1, "a", 0.0)
        rows = metrics.to_dict()["transfers"]
        assert [r["stream"] for r in rows] == [1, 2]

    def test_float_rounding_in_export(self):
        metrics = ServiceMetrics()
        metrics.on_submitted(1, "a", 0.1234567894444)
        row = metrics.to_dict()["transfers"][0]
        assert row["submitted_s"] == 0.123456789

    def test_render_table_shape(self):
        metrics = ServiceMetrics()
        metrics.on_submitted(1, "a", 0.0)
        metrics.on_started(1, 0.0)
        metrics.on_finished(1, outcome(1), 0.5)
        metrics.on_rejected(9, "z", "queue full", 0.1)
        table = metrics.render_table({"policy": "fifo"})
        assert "# service report" in table
        assert "policy=fifo" in table
        assert "REJECTED(queue full)" in table

    def test_json_parses_round_trip(self):
        metrics = ServiceMetrics()
        metrics.on_submitted(1, "a", 0.0)
        parsed = json.loads(metrics.to_json())
        assert parsed["summary"]["transfers"] == 1
