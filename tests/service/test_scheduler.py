"""Unit tests for the scheduling policies."""

from dataclasses import dataclass

import pytest

from repro.service.scheduler import (
    CopyBudgetPolicy,
    FifoPolicy,
    RoundRobinPolicy,
    get_policy,
    policy_names,
)


class FakeMachine:
    def __init__(self, available):
        self.available = available

    def frames_available(self, now):
        return self.available

    def has_frame(self, now):
        return self.available > 0


@dataclass
class FakeEntry:
    machine: FakeMachine
    client: str


def active(*specs):
    """specs: (stream_id, client, frames_available)."""
    return {
        stream_id: FakeEntry(FakeMachine(avail), client)
        for stream_id, client, avail in specs
    }


class TestFifo:
    def test_head_drains_first(self):
        table = active((1, "a", 5), (2, "b", 5))
        assert FifoPolicy().grants(table, 0.0, 4) == [1, 1, 1, 1]

    def test_spills_to_next_when_head_short(self):
        table = active((1, "a", 2), (2, "b", 5))
        assert FifoPolicy().grants(table, 0.0, 4) == [1, 1, 2, 2]

    def test_empty_table(self):
        assert FifoPolicy().grants({}, 0.0, 4) == []


class TestRoundRobin:
    def test_alternates_between_clients(self):
        table = active((1, "a", 5), (2, "b", 5))
        grants = RoundRobinPolicy().grants(table, 0.0, 4)
        assert grants == [1, 2, 1, 2]

    def test_rotation_persists_across_calls(self):
        policy = RoundRobinPolicy()
        table = active((1, "a", 5), (2, "b", 5))
        first = policy.grants(table, 0.0, 1)
        second = policy.grants(table, 0.0, 1)
        assert first + second == [1, 2]

    def test_skips_empty_clients(self):
        table = active((1, "a", 0), (2, "b", 3))
        assert RoundRobinPolicy().grants(table, 0.0, 2) == [2, 2]

    def test_terminates_when_nothing_available(self):
        table = active((1, "a", 0), (2, "b", 0))
        assert RoundRobinPolicy().grants(table, 0.0, 8) == []

    def test_same_client_streams_share_turn(self):
        table = active((1, "a", 5), (2, "a", 5), (3, "b", 5))
        grants = RoundRobinPolicy().grants(table, 0.0, 4)
        # Client "a" serves stream 1 on its turns; "b" serves stream 3.
        assert grants == [1, 3, 1, 3]


class TestCopyBudget:
    def test_caps_grants_per_quantum(self):
        policy = CopyBudgetPolicy(quantum_s=0.01, copy_s_per_packet=0.004)
        table = active((1, "a", 10))
        assert len(policy.grants(table, 0.0, 8)) == 2  # floor(0.01/0.004)
        assert policy.grants(table, 0.005, 8) == []  # same window: spent
        assert policy.budget_exhausted(0.005)

    def test_budget_replenishes_next_window(self):
        policy = CopyBudgetPolicy(quantum_s=0.01, copy_s_per_packet=0.004)
        table = active((1, "a", 10))
        policy.grants(table, 0.0, 8)
        assert len(policy.grants(table, 0.011, 8)) == 2
        assert policy.next_window_start(0.011) == pytest.approx(0.02)

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            CopyBudgetPolicy(quantum_s=0.0)


class TestRegistry:
    def test_names_are_canonical(self):
        assert policy_names() == ["fifo", "rr", "copy-budget"]

    def test_get_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown policy"):
            get_policy("lottery")

    def test_get_policy_kwargs(self):
        policy = get_policy("copy-budget", quantum_s=0.02,
                            copy_s_per_packet=0.01)
        assert policy.per_quantum == 2
