"""Smoke tests keeping the example applications runnable.

Each example is executed as a subprocess, exactly as a user would run
it.  Only the faster examples are exercised here (the 4 MB remote dump
and the full UDP/loss demos run in minutes and are covered by their
underlying libraries' tests).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: float = 120.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "stop-and-wait / blast" in out
        assert "38%" in out or "37%" in out

    def test_interface_study(self):
        out = run_example("interface_study.py")
        assert "double buffering speedup" in out
        assert "DMA" in out

    def test_contention_study(self):
        out = run_example("contention_study.py")
        assert "80%" in out

    def test_file_server(self):
        out = run_example("file_server.py")
        assert "Every byte arrived intact" in out

    def test_udp_file_service(self):
        out = run_example("udp_file_service.py")
        assert "intact=True" in out

    @pytest.mark.parametrize("name", [
        "quickstart.py", "file_server.py", "udp_blast_demo.py",
        "udp_file_service.py", "remote_dump.py", "interface_study.py",
        "contention_study.py",
    ])
    def test_all_examples_importable(self, name):
        """Every example at least compiles (the slow ones aren't run)."""
        source = (EXAMPLES / name).read_text()
        compile(source, name, "exec")
