"""Tests for repro.congestion."""
