"""Unit tests for the controller seam, the tuner, and Jain's index."""

import pytest

from repro.congestion import (
    AutoTuner,
    CONTROLLER_NAMES,
    FixedController,
    RenoController,
    as_timeout_policy,
    jain_index,
    make_controller,
)
from repro.congestion.controller import UNBOUNDED_WINDOW
from repro.congestion.reno import CONGESTION_AVOIDANCE, FAST_RECOVERY


class TestFixedController:
    def test_reproduces_the_papers_discipline(self):
        controller = FixedController(0.05)
        assert controller.window() == UNBOUNDED_WINDOW
        assert controller.rto() == 0.05
        # Every event is a no-op: the numbers never move.
        controller.on_ack(5)
        assert controller.on_dup_ack() is False
        controller.on_loss()
        controller.on_timeout()
        controller.on_rtt_sample(0.001)
        assert controller.window() == UNBOUNDED_WINDOW
        assert controller.rto() == 0.05
        assert controller.snapshot() is None

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(ValueError):
            FixedController(0.0)


class TestMakeController:
    def test_names(self):
        assert make_controller("fixed", 0.05).name == "fixed"
        assert make_controller("reno", 0.05).name == "reno"
        assert "auto" in CONTROLLER_NAMES  # resolved by the tuner, not here
        with pytest.raises(ValueError):
            make_controller("auto", 0.05)
        with pytest.raises(ValueError):
            make_controller("vegas", 0.05)


class TestTimeoutPolicyAdapter:
    def test_routes_through_the_controller(self):
        controller = RenoController(timeout_s=0.05)
        policy = as_timeout_policy(controller)
        assert policy.current() == controller.rto()
        policy.record_sample(0.01)
        assert controller.rtt.samples == 1
        before = policy.current()
        policy.record_timeout()
        assert controller.rto_events == 1  # expiry reached the FSM
        assert policy.current() >= before  # Karn backoff in effect


class TestRenoEventChoreography:
    def test_third_dup_ack_fires_fast_retransmit_once(self):
        controller = RenoController(timeout_s=0.05)
        controller.on_ack(newly_acked=10)  # open the window a bit
        assert controller.on_dup_ack() is False
        assert controller.on_dup_ack() is False
        assert controller.on_dup_ack() is True  # third dup: retransmit
        assert controller.state == FAST_RECOVERY
        # Further duplicates inflate, never re-fire.
        assert controller.on_dup_ack() is False
        inflated = controller.cwnd
        assert controller.on_dup_ack() is False
        assert controller.cwnd == inflated + 1.0

    def test_new_ack_deflates_recovery(self):
        controller = RenoController(timeout_s=0.05)
        controller.on_ack(newly_acked=10)
        for _ in range(3):
            controller.on_dup_ack()
        assert controller.state == FAST_RECOVERY
        controller.on_ack()
        assert controller.state == CONGESTION_AVOIDANCE
        assert controller.cwnd == controller.ssthresh

    def test_nak_loss_is_multiplicative_decrease(self):
        controller = RenoController(timeout_s=0.05)
        controller.on_ack(newly_acked=20)
        cwnd = controller.cwnd
        controller.on_loss()
        assert controller.ssthresh == pytest.approx(max(cwnd / 2.0, 2.0))
        assert controller.cwnd == controller.ssthresh
        assert controller.state == CONGESTION_AVOIDANCE


class TestAutoTuner:
    def test_clean_network_keeps_the_papers_choice(self):
        tuner = AutoTuner(packet_bytes=1024)
        choice = tuner.choose(64 * 1024)
        assert (choice.protocol, choice.congestion) == ("blast", "fixed")

    def test_single_packet_takes_stop_and_wait(self):
        tuner = AutoTuner(packet_bytes=1024)
        assert tuner.choose(512).protocol == "saw"

    def test_measured_loss_flips_to_reno_sliding(self):
        tuner = AutoTuner(packet_bytes=1024)
        tuner.observe(data_frames_sent=100, retransmits=10)  # 10% loss
        choice = tuner.choose(64 * 1024)
        assert choice == (choice.__class__(
            protocol="sliding", window=tuner.window, congestion="reno"))

    def test_ewma_recovers_after_clean_history(self):
        tuner = AutoTuner(packet_bytes=1024, gain=0.5)
        tuner.observe(100, 10)
        assert tuner.choose(64 * 1024).protocol == "sliding"
        for _ in range(8):
            tuner.observe(100, 0)
        assert tuner.loss_estimate < tuner.lossy_threshold
        assert tuner.choose(64 * 1024).protocol == "blast"

    def test_first_observation_replaces_the_prior(self):
        tuner = AutoTuner(packet_bytes=1024, initial_loss=0.5)
        tuner.observe(100, 0)
        assert tuner.loss_estimate == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoTuner(packet_bytes=0)
        with pytest.raises(ValueError):
            AutoTuner(packet_bytes=1024, gain=0.0)
        with pytest.raises(ValueError):
            AutoTuner(packet_bytes=1024, lossy_threshold=1.0)


class TestJainIndex:
    def test_equal_shares_score_one(self):
        assert jain_index([5.0, 5.0, 5.0, 5.0]) == pytest.approx(1.0)

    def test_single_hog_scores_one_over_n(self):
        assert jain_index([1.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)

    def test_empty_and_all_zero_are_vacuously_fair(self):
        assert jain_index([]) == 1.0
        assert jain_index([0.0, 0.0]) == 1.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_index([1.0, -1.0])
