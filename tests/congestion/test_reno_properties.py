"""Hypothesis property tests for the Reno state machine.

The FSM's safety net, independent of any particular transfer schedule:
from any reachable (cwnd, ssthresh, state), *any* sequence of
ack/dup-ack/loss/timeout events keeps ``cwnd >= 1`` packet and
``ssthresh >= MIN_SSTHRESH``, and fast recovery is never re-entered for
the same loss event — :meth:`on_dup_ack` returns True (fast retransmit)
at most once until a new ack or a timeout exits recovery.
"""

import pytest

pytest.importorskip("hypothesis")

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.congestion.reno import (
    FAST_RECOVERY,
    MIN_SSTHRESH,
    RenoController,
    SLOW_START,
)

# One transfer event: ack of N new packets, a duplicate ack, explicit
# loss evidence, a timer expiry, or a clean RTT sample.
EVENTS = st.one_of(
    st.tuples(st.just("ack"), st.integers(min_value=1, max_value=8)),
    st.tuples(st.just("dup_ack"), st.just(0)),
    st.tuples(st.just("loss"), st.just(0)),
    st.tuples(st.just("timeout"), st.just(0)),
    st.tuples(
        st.just("rtt"),
        st.floats(min_value=1e-6, max_value=2.0,
                  allow_nan=False, allow_infinity=False),
    ),
)


def apply(controller, event):
    """Feed one generated event; returns on_dup_ack's retransmit flag."""
    kind, arg = event
    if kind == "ack":
        controller.on_ack(newly_acked=arg)
    elif kind == "dup_ack":
        return controller.on_dup_ack()
    elif kind == "loss":
        controller.on_loss()
    elif kind == "timeout":
        controller.on_timeout()
    elif kind == "rtt":
        controller.on_rtt_sample(arg)
    return False


@given(events=st.lists(EVENTS, max_size=200))
@settings(max_examples=200, deadline=None)
def test_cwnd_and_ssthresh_floors_hold(events):
    controller = RenoController(timeout_s=0.05)
    for event in events:
        apply(controller, event)
        assert controller.cwnd >= 1.0, (event, repr(controller))
        assert controller.ssthresh >= MIN_SSTHRESH, (event, repr(controller))
        assert controller.window() >= 1
        assert controller.rto() > 0.0


@given(events=st.lists(EVENTS, max_size=200))
@settings(max_examples=200, deadline=None)
def test_fast_recovery_not_reentered_for_same_loss_event(events):
    """on_dup_ack may fire a fast retransmit only from outside recovery:
    while FAST_RECOVERY holds, further duplicates inflate the window and
    never re-trigger.  Only a new ack or a timeout exits the state."""
    controller = RenoController(timeout_s=0.05)
    for event in events:
        in_recovery_before = controller.state == FAST_RECOVERY
        fired = apply(controller, event)
        if fired:
            assert event[0] == "dup_ack"
            assert not in_recovery_before, "re-entered recovery while in it"
            assert controller.state == FAST_RECOVERY


@given(events=st.lists(EVENTS, max_size=200))
@settings(max_examples=200, deadline=None)
def test_fast_retransmit_count_matches_recovery_entries(events):
    """Exactly one fast retransmit per entry into fast recovery."""
    controller = RenoController(timeout_s=0.05)
    entries = 0
    for event in events:
        before = controller.state
        fired = apply(controller, event)
        if controller.state == FAST_RECOVERY and before != FAST_RECOVERY:
            entries += 1
            assert fired
    assert controller.fast_retransmits == entries


@given(events=st.lists(EVENTS, max_size=200))
@settings(max_examples=100, deadline=None)
def test_timeout_always_restarts_slow_start(events):
    controller = RenoController(timeout_s=0.05)
    for event in events:
        apply(controller, event)
    controller.on_timeout()
    assert controller.state == SLOW_START
    assert controller.cwnd == 1.0
    assert controller.ssthresh >= MIN_SSTHRESH


@given(events=st.lists(EVENTS, max_size=120))
@settings(max_examples=100, deadline=None)
def test_snapshot_is_report_safe(events):
    """Snapshots must round-trip into the byte-stable metrics report:
    plain types, bounded timeline, counters consistent."""
    controller = RenoController(timeout_s=0.05)
    for event in events:
        apply(controller, event)
    snap = controller.snapshot()
    assert snap["controller"] == "reno"
    assert snap["cwnd"] >= 1.0
    assert snap["ssthresh"] >= MIN_SSTHRESH
    assert snap["fast_retransmits"] == controller.fast_retransmits
    assert snap["rto_events"] == controller.rto_events
    assert len(snap["timeline"]) <= 256
    assert snap["timeline_dropped"] >= 0
