"""Integration-style unit tests for medium/interface/host mechanics."""

from dataclasses import dataclass

import pytest

from repro.sim import Environment
from repro.simnet import (
    Activity,
    BernoulliErrors,
    DeterministicDrops,
    DmaInterface,
    NetworkParams,
    TraceRecorder,
    make_lan,
)
from repro.simnet.params import CopyCostModel


@dataclass(frozen=True)
class Frame:
    """Minimal frame stub: the substrate only needs ``wire_bytes``."""

    wire_bytes: int
    label: str = ""


@pytest.fixture()
def env():
    return Environment()


def run_transfer(env, sender, receiver, frames, collect):
    """Drive a simple one-way push of ``frames`` and collect arrivals."""

    def tx():
        for frame in frames:
            yield from sender.send(frame)

    def rx():
        for _ in frames:
            frame = yield from receiver.receive()
            collect.append((frame, env.now))

    env.process(tx())
    proc = env.process(rx())
    env.run(proc)


class TestSingleFrameTiming:
    def test_one_frame_elapsed_time(self, env):
        """copy C + transmit T + propagation tau + copy-out C."""
        params = NetworkParams.standalone()
        trace = TraceRecorder()
        a, b, _ = make_lan(env, params, trace=trace)
        got = []
        run_transfer(env, a, b, [Frame(1024)], got)
        expected = (
            params.copy_data_s
            + params.transmit_data_s
            + params.propagation_delay_s
            + params.copy_data_s
        )
        assert got[0][1] == pytest.approx(expected, rel=1e-12)

    def test_trace_records_all_phases(self, env):
        trace = TraceRecorder()
        a, b, _ = make_lan(env, trace=trace)
        run_transfer(env, a, b, [Frame(1024)], [])
        assert len(trace.by_kind(Activity.COPY_IN, "sender")) == 1
        assert len(trace.by_kind(Activity.TRANSMIT, "sender")) == 1
        assert len(trace.by_kind(Activity.COPY_OUT, "receiver")) == 1

    def test_device_latency_charged_per_frame(self, env):
        params = NetworkParams.standalone(observed=True)
        a, b, _ = make_lan(env, params)
        got = []
        run_transfer(env, a, b, [Frame(1024)], got)
        expected = (
            params.copy_data_s
            + params.transmit_data_s
            + params.propagation_delay_s
            + params.device_latency_s
            + params.copy_data_s
        )
        assert got[0][1] == pytest.approx(expected, rel=1e-12)


class TestBuffering:
    def test_single_buffer_serialises_copy_and_transmit(self, env):
        """3-Com model: per-packet sender cycle is exactly C+T."""
        params = NetworkParams.standalone(propagation_delay_s=0.0)
        trace = TraceRecorder()
        a, b, _ = make_lan(env, params, trace=trace)
        run_transfer(env, a, b, [Frame(1024) for _ in range(3)], [])
        copies = trace.by_kind(Activity.COPY_IN, "sender")
        cycle = params.copy_data_s + params.transmit_data_s
        starts = [span.start for span in copies]
        assert starts == pytest.approx([0.0, cycle, 2 * cycle])

    def test_double_buffer_overlaps_copy_with_transmit(self, env):
        """Figure 3.d: with C > T the sender's copies run back-to-back."""
        params = NetworkParams.standalone(
            propagation_delay_s=0.0
        ).with_double_buffering()
        trace = TraceRecorder()
        a, b, _ = make_lan(env, params, trace=trace)
        run_transfer(env, a, b, [Frame(1024) for _ in range(3)], [])
        copies = trace.by_kind(Activity.COPY_IN, "sender")
        C = params.copy_data_s
        assert [span.start for span in copies] == pytest.approx([0.0, C, 2 * C])

    def test_triple_buffer_no_better_than_double(self, env):
        """The paper: a third buffer adds nothing when C and T are constant."""
        results = {}
        for n_buf in (2, 3):
            env_n = Environment()
            params = NetworkParams.standalone(tx_buffers=n_buf, busy_wait=False)
            a, b, _ = make_lan(env_n, params)
            got = []
            run_transfer(env_n, a, b, [Frame(1024) for _ in range(8)], got)
            results[n_buf] = got[-1][1]
        assert results[3] == pytest.approx(results[2], rel=1e-12)

    def test_rx_overrun_drops_frame(self, env):
        """A burst into a 1-buffer receiver that never drains overruns."""
        params = NetworkParams.standalone(rx_buffers=1)
        trace = TraceRecorder()
        a, b, _ = make_lan(env, params, trace=trace)

        def tx():
            for _ in range(3):
                yield from a.send(Frame(1024))

        env.process(tx())
        env.run()  # receiver never drains its rx store
        assert b.interface.rx_overruns == 2
        overruns = [s for s in trace.drops() if s.note == "rx overrun"]
        assert len(overruns) == 2


class TestErrorsOnTheWire:
    def test_deterministic_drop_loses_scripted_frame(self, env):
        a, b, medium = make_lan(
            env, NetworkParams.standalone(), error_model=DeterministicDrops([1])
        )
        frames = [Frame(1024, label=f"f{i}") for i in range(3)]

        def tx():
            for frame in frames:
                yield from a.send(frame)

        got = []

        def rx():
            for _ in range(2):  # only two will arrive
                frame = yield from b.receive()
                got.append(frame.label)

        env.process(tx())
        proc = env.process(rx())
        env.run(proc)
        assert got == ["f0", "f2"]
        assert medium.frames_dropped == 1
        assert medium.loss_rate == pytest.approx(1 / 3)

    def test_bernoulli_loss_rate_observed(self, env):
        a, b, medium = make_lan(
            env,
            NetworkParams.standalone(),
            error_model=BernoulliErrors(0.2, seed=3),
        )

        def tx():
            for _ in range(2000):
                yield from a.send(Frame(64))

        env.process(tx())
        env.run()
        assert medium.loss_rate == pytest.approx(0.2, abs=0.03)

    def test_receive_timeout_returns_none(self, env):
        a, b, _ = make_lan(env, NetworkParams.standalone())

        def rx():
            frame = yield from b.receive(timeout_s=0.01)
            return frame

        proc = env.process(rx())
        assert env.run(proc) is None
        assert env.now == pytest.approx(0.01)

    def test_receive_timeout_cancel_does_not_steal_later_frame(self, env):
        a, b, _ = make_lan(env, NetworkParams.standalone())
        outcome = {}

        def rx():
            first = yield from b.receive(timeout_s=0.001)
            outcome["first"] = first
            second = yield from b.receive(timeout_s=1.0)
            outcome["second"] = second

        def tx():
            yield env.timeout(0.01)
            yield from a.send(Frame(1024, label="late"))

        env.process(tx())
        proc = env.process(rx())
        env.run(proc)
        assert outcome["first"] is None
        assert outcome["second"].label == "late"


class TestWireSharing:
    def test_wire_serialises_simultaneous_transmissions(self, env):
        """Two hosts transmitting together: second defers (carrier sense)."""
        params = NetworkParams.standalone(propagation_delay_s=0.0)
        trace = TraceRecorder()
        a, b, _ = make_lan(env, params, trace=trace)

        def tx(host, frame):
            yield from host.send(frame)

        env.process(tx(a, Frame(1024)))
        env.process(tx(b, Frame(1024)))
        env.run()
        transmissions = sorted(
            trace.by_kind(Activity.TRANSMIT), key=lambda s: s.start
        )
        assert len(transmissions) == 2
        # No overlap on the shared wire.
        assert transmissions[1].start >= transmissions[0].end


class TestDmaInterface:
    def test_dma_frees_host_cpu(self, env):
        """With DMA, host CPU copy time is zero; elapsed time unchanged."""
        params = NetworkParams.standalone()
        trace = TraceRecorder()
        a, b, _ = make_lan(env, params, trace=trace, interface_cls=DmaInterface)
        got = []
        run_transfer(env, a, b, [Frame(1024)], got)
        # Copies still happen (trace shows them) but on the DMA processor;
        # host CPUs were never requested.
        assert trace.total_time(Activity.COPY_IN, "sender") > 0
        assert a.cpu.count == 0 and a.cpu.queued == 0
        expected = (
            params.copy_data_s
            + params.transmit_data_s
            + params.propagation_delay_s
            + params.copy_data_s
        )
        assert got[0][1] == pytest.approx(expected)

    def test_slow_dma_processor_hurts_elapsed_time(self, env):
        """The paper's Excelan observation: a slow 8088 copy is worse."""
        slow_copy = CopyCostModel(setup_s=0.2e-3, bytes_per_second=400_000)
        params = NetworkParams.standalone()
        a, b, _ = make_lan(
            env,
            params,
            interface_cls=DmaInterface,
            dma_copy_model=slow_copy,
        )
        got = []
        run_transfer(env, a, b, [Frame(1024)], got)
        fast_time = 2 * params.copy_data_s + params.transmit_data_s
        assert got[0][1] > fast_time
