"""Unit tests for network parameters and the copy-cost calibration."""

import pytest

from repro.simnet import CopyCostModel, NetworkParams
from repro.simnet.params import (
    STANDALONE_COPY_POINTS,
    VKERNEL_COPY_POINTS,
)


class TestCopyCostModel:
    def test_calibration_reproduces_anchors_exactly(self):
        model = CopyCostModel.from_calibration(STANDALONE_COPY_POINTS)
        assert model.copy_time(1024) == pytest.approx(1.35e-3, rel=1e-12)
        assert model.copy_time(64) == pytest.approx(0.17e-3, rel=1e-12)

    def test_vkernel_calibration(self):
        model = CopyCostModel.from_calibration(VKERNEL_COPY_POINTS)
        assert model.copy_time(1024) == pytest.approx(1.83e-3, rel=1e-12)
        assert model.copy_time(64) == pytest.approx(0.67e-3, rel=1e-12)

    def test_copy_time_is_monotone_in_size(self):
        model = CopyCostModel.from_calibration(STANDALONE_COPY_POINTS)
        times = [model.copy_time(n) for n in (0, 64, 512, 1024, 1536)]
        assert times == sorted(times)
        assert times[0] == model.setup_s

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            CopyCostModel(setup_s=-1e-6, bytes_per_second=1e6)
        with pytest.raises(ValueError):
            CopyCostModel(setup_s=0.0, bytes_per_second=0.0)
        model = CopyCostModel(1e-6, 1e6)
        with pytest.raises(ValueError):
            model.copy_time(-1)

    def test_degenerate_calibration_rejected(self):
        with pytest.raises(ValueError):
            CopyCostModel.from_calibration(((100, 1e-3), (100, 2e-3)))
        with pytest.raises(ValueError):
            # Larger frame cheaper to copy: impossible.
            CopyCostModel.from_calibration(((1024, 0.1e-3), (64, 0.2e-3)))

    def test_scaled_adds_fixed_overhead(self):
        model = CopyCostModel.from_calibration(STANDALONE_COPY_POINTS)
        heavier = model.scaled(0.5e-3)
        assert heavier.copy_time(1024) == pytest.approx(model.copy_time(1024) + 0.5e-3)
        assert heavier.bytes_per_second == model.bytes_per_second


class TestNetworkParams:
    def test_paper_constants_standalone(self):
        p = NetworkParams.standalone()
        # Table 2 of the paper: C=1.35 ms, T=0.82 ms, Ca=0.17 ms, Ta=0.05 ms.
        assert p.copy_data_s == pytest.approx(1.35e-3)
        assert p.copy_ack_s == pytest.approx(0.17e-3)
        assert p.transmit_data_s == pytest.approx(819.2e-6)  # 1024 B at 10 Mb/s
        assert p.transmit_ack_s == pytest.approx(51.2e-6)    # 64 B at 10 Mb/s

    def test_paper_constants_vkernel(self):
        p = NetworkParams.vkernel()
        assert p.copy_data_s == pytest.approx(1.83e-3)
        assert p.copy_ack_s == pytest.approx(0.67e-3)

    def test_observed_mode_adds_device_latency(self):
        accounted = NetworkParams.standalone()
        observed = NetworkParams.standalone(observed=True)
        assert accounted.device_latency_s == 0.0
        assert observed.device_latency_s == pytest.approx(85e-6)

    def test_transmission_time_scales_with_size(self):
        p = NetworkParams.standalone()
        assert p.transmission_time(0) == 0.0
        assert p.transmission_time(1250) == pytest.approx(1e-3)  # 10 kb / 10 Mb/s
        with pytest.raises(ValueError):
            p.transmission_time(-1)

    def test_double_buffering_factory(self):
        p = NetworkParams.standalone().with_double_buffering()
        assert p.tx_buffers == 2
        # Everything else unchanged.
        assert p.copy_data_s == pytest.approx(1.35e-3)

    def test_overrides_via_factories(self):
        p = NetworkParams.standalone(propagation_delay_s=0.0, tx_buffers=3)
        assert p.propagation_delay_s == 0.0
        assert p.tx_buffers == 3

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bandwidth_bps": 0},
            {"propagation_delay_s": -1e-6},
            {"data_packet_bytes": 0},
            {"ack_bytes": -1},
            {"device_latency_s": -1e-9},
            {"tx_buffers": 0},
            {"rx_buffers": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            NetworkParams(**kwargs)

    def test_kernel_overhead_is_roughly_constant_per_frame(self):
        """Section 2.2: the kernel adds ~0.5 ms per frame regardless of size."""
        standalone = NetworkParams.standalone()
        kernel = NetworkParams.vkernel()
        data_overhead = kernel.copy_data_s - standalone.copy_data_s
        ack_overhead = kernel.copy_ack_s - standalone.copy_ack_s
        assert data_overhead == pytest.approx(0.48e-3, rel=1e-9)
        assert ack_overhead == pytest.approx(0.50e-3, rel=1e-9)
