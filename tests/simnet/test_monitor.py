"""Tests for the error-rate measurement apparatus."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.stats import wilson_interval
from repro.sim import Environment
from repro.simnet import (
    BernoulliErrors,
    GapLossEstimator,
    MediumMonitor,
    NetworkParams,
    make_lan,
    measure_loss_rate,
)


class TestWilsonInterval:
    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(1, 0)
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.0)

    def test_zero_successes_lower_bound_zero(self):
        low, high = wilson_interval(0, 1000)
        assert low == 0.0
        assert 0.0 < high < 0.01

    def test_all_successes_upper_bound_one(self):
        low, high = wilson_interval(1000, 1000)
        assert high == 1.0
        assert low > 0.99

    def test_brackets_point_estimate(self):
        low, high = wilson_interval(37, 1000)
        assert low < 0.037 < high

    def test_matches_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        low, high = wilson_interval(42, 5000, 0.95)
        ref = scipy_stats.binomtest(42, 5000).proportion_ci(
            confidence_level=0.95, method="wilson"
        )
        assert low == pytest.approx(ref.low, rel=1e-6)
        assert high == pytest.approx(ref.high, rel=1e-6)

    @given(k=st.integers(0, 100), extra=st.integers(0, 10_000))
    @settings(max_examples=80)
    def test_interval_ordering(self, k, extra):
        n = k + extra
        if n == 0:
            return
        low, high = wilson_interval(k, n)
        assert 0.0 <= low <= k / n <= high <= 1.0


class TestGapLossEstimator:
    def test_no_losses(self):
        estimator = GapLossEstimator()
        for seq in range(100):
            estimator.observe(seq)
        assert estimator.loss_rate() == 0.0
        assert estimator.inferred_lost == 0
        assert estimator.span == 100

    def test_gap_counts_losses(self):
        estimator = GapLossEstimator()
        for seq in (0, 1, 4, 5, 9):
            estimator.observe(seq)
        assert estimator.inferred_lost == 5  # 2,3 and 6,7,8
        assert estimator.span == 10
        assert estimator.loss_rate() == 0.5

    def test_out_of_order_rejected(self):
        estimator = GapLossEstimator()
        estimator.observe(5)
        with pytest.raises(ValueError):
            estimator.observe(5)
        with pytest.raises(ValueError):
            estimator.observe(3)

    def test_empty_estimator(self):
        estimator = GapLossEstimator()
        assert estimator.loss_rate() == 0.0
        assert estimator.confidence_interval() == (0.0, 1.0)

    def test_edge_losses_invisible(self):
        """Losses before the first / after the last arrival can't be seen
        from gaps — the technique's documented bias."""
        estimator = GapLossEstimator()
        for seq in (10, 11, 12):  # probes 0..9 lost, invisible
            estimator.observe(seq)
        assert estimator.inferred_lost == 0

    @given(arrivals=st.sets(st.integers(0, 200), min_size=1))
    @settings(max_examples=80)
    def test_conservation_property(self, arrivals):
        ordered = sorted(arrivals)
        estimator = GapLossEstimator()
        for seq in ordered:
            estimator.observe(seq)
        assert estimator.received + estimator.inferred_lost == estimator.span
        assert estimator.span == ordered[-1] - ordered[0] + 1


class TestMediumMonitor:
    def test_delta_window(self):
        env = Environment()
        sender, receiver, medium = make_lan(
            env, NetworkParams.standalone(),
            error_model=BernoulliErrors(0.5, seed=1),
        )

        def burst(n):
            from repro.core import DataFrame

            for seq in range(n):
                yield from sender.send(
                    DataFrame(1, seq, n, b"x" * 64), dst=receiver
                )

        env.run(env.process(burst(100)))
        monitor = MediumMonitor(medium)  # snapshot after the first burst
        env.run(env.process(burst(100)))
        transmitted, dropped, corrupted = monitor.delta()
        assert transmitted == 100  # only the second burst
        assert 0 < dropped < 100
        assert corrupted == 0
        assert monitor.loss_rate() == dropped / transmitted


class TestMeasureLossRate:
    @pytest.mark.parametrize("pn", [0.0, 1e-2, 0.1])
    def test_estimate_matches_ground_truth(self, pn):
        env = Environment()
        sender, receiver, _ = make_lan(
            env, NetworkParams.standalone(),
            error_model=BernoulliErrors(pn, seed=11),
        )
        measurement = measure_loss_rate(env, sender, receiver, n_probes=5000)
        # Gap estimation undercounts only edge losses: tiny at this scale.
        assert measurement.estimated_rate == pytest.approx(
            measurement.true_rate, abs=2e-3
        )
        if pn > 0:
            assert measurement.truth_within_ci

    def test_shoch_hupp_scale_measurement(self):
        """Measure a 1e-4 'interface grade' channel with 200k probes —
        the scale of the paper's own error-rate observation."""
        env = Environment()
        sender, receiver, _ = make_lan(
            env, NetworkParams.standalone(),
            error_model=BernoulliErrors(1e-4, seed=12),
        )
        measurement = measure_loss_rate(env, sender, receiver, n_probes=200_000)
        assert measurement.truth_within_ci
        assert measurement.ci_low < 1e-4 < measurement.ci_high

    def test_validation(self):
        env = Environment()
        sender, receiver, _ = make_lan(env)
        with pytest.raises(ValueError):
            measure_loss_rate(env, sender, receiver, n_probes=0)
