"""Unit and property tests for the loss models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import (
    BernoulliErrors,
    CompositeErrors,
    DeterministicDrops,
    GilbertElliott,
    PerfectChannel,
)


class TestPerfectChannel:
    def test_never_drops(self):
        model = PerfectChannel()
        assert not any(model.drops(object()) for _ in range(1000))


class TestBernoulli:
    def test_p_zero_never_drops(self):
        model = BernoulliErrors(0.0, seed=1)
        assert not any(model.drops(None) for _ in range(1000))

    def test_p_one_always_drops(self):
        model = BernoulliErrors(1.0, seed=1)
        assert all(model.drops(None) for _ in range(1000))

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            BernoulliErrors(-0.1)
        with pytest.raises(ValueError):
            BernoulliErrors(1.1)

    def test_seed_reproducibility(self):
        a = [BernoulliErrors(0.3, seed=42).drops(None) for _ in range(200)]
        b = [BernoulliErrors(0.3, seed=42).drops(None) for _ in range(200)]
        assert a == b

    def test_reset_restarts_stream(self):
        model = BernoulliErrors(0.3, seed=7)
        first = [model.drops(None) for _ in range(100)]
        model.reset()
        second = [model.drops(None) for _ in range(100)]
        assert first == second

    def test_empirical_rate_close_to_p(self):
        model = BernoulliErrors(0.2, seed=123)
        n = 20_000
        rate = sum(model.drops(None) for _ in range(n)) / n
        assert rate == pytest.approx(0.2, abs=0.01)

    @given(p=st.floats(min_value=0.0, max_value=1.0), seed=st.integers(0, 2**20))
    @settings(max_examples=50)
    def test_drops_returns_bool(self, p, seed):
        model = BernoulliErrors(p, seed=seed)
        assert isinstance(model.drops(None), bool)


class TestGilbertElliott:
    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliott(p_good_to_bad=1.5, p_bad_to_good=0.5)

    def test_all_good_never_drops(self):
        model = GilbertElliott(0.0, 1.0, p_good_loss=0.0, p_bad_loss=1.0, seed=1)
        assert not any(model.drops(None) for _ in range(500))
        assert model.state == GilbertElliott.GOOD

    def test_burstiness(self):
        """Losses cluster: consecutive-loss runs are longer than Bernoulli's."""
        model = GilbertElliott(0.01, 0.2, p_bad_loss=1.0, seed=5)
        outcomes = [model.drops(None) for _ in range(50_000)]

        def mean_run(outcomes):
            runs, current = [], 0
            for o in outcomes:
                if o:
                    current += 1
                elif current:
                    runs.append(current)
                    current = 0
            if current:
                runs.append(current)
            return sum(runs) / len(runs) if runs else 0.0

        rate = sum(outcomes) / len(outcomes)
        bernoulli = BernoulliErrors(rate, seed=5)
        b_outcomes = [bernoulli.drops(None) for _ in range(50_000)]
        assert mean_run(outcomes) > 2 * mean_run(b_outcomes)

    def test_stationary_loss_rate_matches_empirical(self):
        model = GilbertElliott(0.05, 0.25, p_good_loss=0.01, p_bad_loss=0.9, seed=11)
        n = 100_000
        rate = sum(model.drops(None) for _ in range(n)) / n
        assert rate == pytest.approx(model.stationary_loss_rate, rel=0.1)

    def test_stationary_rate_degenerate_chain(self):
        model = GilbertElliott(0.0, 0.0, p_good_loss=0.02, seed=1)
        assert model.stationary_loss_rate == pytest.approx(0.02)

    def test_reset_restores_state_and_stream(self):
        model = GilbertElliott(0.3, 0.3, seed=9)
        first = [model.drops(None) for _ in range(50)]
        model.reset()
        assert model.state == GilbertElliott.GOOD
        assert [model.drops(None) for _ in range(50)] == first


class TestDeterministicDrops:
    def test_drops_exactly_the_scripted_indices(self):
        model = DeterministicDrops([0, 2, 5])
        outcomes = [model.drops(None) for _ in range(8)]
        assert outcomes == [True, False, True, False, False, True, False, False]
        assert model.frames_seen == 8

    def test_negative_index_rejected(self):
        with pytest.raises(ValueError):
            DeterministicDrops([-1])

    def test_reset(self):
        model = DeterministicDrops([1])
        assert [model.drops(None) for _ in range(3)] == [False, True, False]
        model.reset()
        assert [model.drops(None) for _ in range(3)] == [False, True, False]

    @given(st.sets(st.integers(0, 50), max_size=10))
    @settings(max_examples=50)
    def test_drop_count_matches_script(self, indices):
        model = DeterministicDrops(indices)
        dropped = sum(model.drops(None) for _ in range(51))
        assert dropped == len(indices)


class TestComposite:
    def test_any_component_dropping_drops(self):
        model = CompositeErrors([DeterministicDrops([0]), DeterministicDrops([2])])
        assert [model.drops(None) for _ in range(4)] == [True, False, True, False]

    def test_empty_composite_never_drops(self):
        model = CompositeErrors([])
        assert not any(model.drops(None) for _ in range(100))

    def test_reset_propagates(self):
        inner = DeterministicDrops([0])
        model = CompositeErrors([inner])
        model.drops(None)
        model.reset()
        assert inner.frames_seen == 0

    def test_combined_rate_approximates_union(self):
        """Wire (1e-2) + interface (5e-2) losses compose to ~1-(1-p)(1-q)."""
        model = CompositeErrors(
            [BernoulliErrors(0.01, seed=1), BernoulliErrors(0.05, seed=2)]
        )
        n = 100_000
        rate = sum(model.drops(None) for _ in range(n)) / n
        expected = 1 - (1 - 0.01) * (1 - 0.05)
        assert rate == pytest.approx(expected, rel=0.1)
