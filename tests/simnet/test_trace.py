"""Unit tests for trace recording and interval algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simnet import Activity, Span, TraceRecorder, total_overlap


class TestSpan:
    def test_duration(self):
        assert Span(Activity.COPY_IN, "a", 1.0, 3.5).duration == 2.5

    def test_reversed_span_rejected(self):
        with pytest.raises(ValueError):
            Span(Activity.COPY_IN, "a", 2.0, 1.0)

    def test_zero_length_allowed(self):
        assert Span(Activity.DROP, "a", 1.0, 1.0).duration == 0.0


class TestTotalOverlap:
    def test_disjoint(self):
        assert total_overlap([(0, 1)], [(2, 3)]) == 0.0

    def test_nested(self):
        assert total_overlap([(0, 10)], [(2, 4)]) == 2.0

    def test_partial(self):
        assert total_overlap([(0, 5)], [(3, 8)]) == 2.0

    def test_multiple_intervals(self):
        assert total_overlap([(0, 2), (4, 6)], [(1, 5)]) == pytest.approx(2.0)

    def test_self_overlapping_input_merged(self):
        # (0,3) and (2,5) merge to (0,5): overlap with (0,5) is 5, not more.
        assert total_overlap([(0, 3), (2, 5)], [(0, 5)]) == pytest.approx(5.0)

    def test_empty_inputs(self):
        assert total_overlap([], [(0, 1)]) == 0.0
        assert total_overlap([], []) == 0.0

    @given(
        a=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda t: (min(t), max(t))
            ),
            max_size=8,
        ),
        b=st.lists(
            st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
                lambda t: (min(t), max(t))
            ),
            max_size=8,
        ),
    )
    @settings(max_examples=100)
    def test_symmetry_and_bounds(self, a, b):
        forward = total_overlap(a, b)
        backward = total_overlap(b, a)
        assert forward == pytest.approx(backward, abs=1e-9)
        assert forward >= 0.0
        assert forward <= sum(hi - lo for lo, hi in a) + 1e-9
        assert forward <= sum(hi - lo for lo, hi in b) + 1e-9


class TestTraceRecorder:
    def test_record_and_query(self):
        trace = TraceRecorder()
        trace.record(Activity.COPY_IN, "sender", 0.0, 1.0)
        trace.record(Activity.TRANSMIT, "sender", 1.0, 2.0)
        trace.record(Activity.COPY_OUT, "receiver", 2.0, 3.0)
        assert trace.total_time(Activity.COPY_IN) == 1.0
        assert trace.total_time(Activity.COPY_IN, "receiver") == 0.0
        assert trace.actors() == ["sender", "receiver"]
        assert trace.end_time == 3.0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            TraceRecorder().record("teleport", "a", 0, 1)

    def test_breakdown(self):
        trace = TraceRecorder()
        trace.record(Activity.COPY_IN, "s", 0.0, 1.35)
        trace.record(Activity.TRANSMIT, "s", 1.35, 2.17)
        trace.record(Activity.COPY_OUT, "r", 2.17, 3.52)
        breakdown = trace.breakdown()
        assert breakdown[Activity.COPY_IN] == pytest.approx(1.35)
        assert breakdown[Activity.TRANSMIT] == pytest.approx(0.82)
        assert breakdown[Activity.COPY_OUT] == pytest.approx(1.35)

    def test_copy_overlap(self):
        trace = TraceRecorder()
        trace.record(Activity.COPY_IN, "sender", 0.0, 2.0)
        trace.record(Activity.COPY_OUT, "receiver", 1.0, 3.0)
        assert trace.copy_overlap("sender", "receiver") == pytest.approx(1.0)

    def test_busy_time_sums_copies_only(self):
        trace = TraceRecorder()
        trace.record(Activity.COPY_IN, "s", 0.0, 1.0)
        trace.record(Activity.COPY_OUT, "s", 2.0, 2.5)
        trace.record(Activity.TRANSMIT, "s", 1.0, 2.0)  # wire, not CPU
        assert trace.busy_time("s") == pytest.approx(1.5)

    def test_clear(self):
        trace = TraceRecorder()
        trace.record(Activity.DROP, "r", 1.0, 1.0)
        trace.clear()
        assert trace.spans == []
        assert trace.end_time == 0.0

    def test_drops_query(self):
        trace = TraceRecorder()
        trace.record(Activity.DROP, "r", 1.0, 1.0, note="channel loss")
        trace.record(Activity.COPY_IN, "s", 0.0, 1.0)
        assert len(trace.drops()) == 1
        assert trace.drops()[0].note == "channel loss"

    def test_render_ascii_empty(self):
        assert TraceRecorder().render_ascii() == "(empty trace)"

    def test_render_ascii_contains_rows(self):
        trace = TraceRecorder()
        trace.record(Activity.COPY_IN, "sender", 0.0, 1.0)
        trace.record(Activity.TRANSMIT, "sender", 1.0, 2.0)
        art = trace.render_ascii(width=40)
        assert "sender copy_in" in art
        assert "#" in art
        assert "=" in art
