"""Tests for the background-load (contention) extension."""

import pytest

from repro.core import BlastTransfer, run_transfer
from repro.sim import Environment
from repro.simnet import BackgroundLoad, NetworkParams, make_lan


def run_blast_under_load(load, n_packets=16, seed=1):
    env = Environment()
    sender, receiver, medium = make_lan(env, NetworkParams.standalone())
    background = BackgroundLoad(env, medium, load, seed=seed)
    transfer = BlastTransfer(env, sender, receiver, bytes(n_packets * 1024))
    env.run(transfer.launch())
    return transfer.result(), background


class TestBackgroundLoad:
    def test_validation(self):
        env = Environment()
        _, _, medium = make_lan(env)
        with pytest.raises(ValueError):
            BackgroundLoad(env, medium, offered_load=1.0)
        with pytest.raises(ValueError):
            BackgroundLoad(env, medium, offered_load=-0.1)
        with pytest.raises(ValueError):
            BackgroundLoad(env, medium, offered_load=0.5, frame_bytes=0)

    def test_zero_load_is_inert(self):
        result, background = run_blast_under_load(0.0)
        reference = run_transfer("blast", bytes(16 * 1024))
        assert result.elapsed_s == pytest.approx(reference.elapsed_s, rel=1e-12)
        assert background.frames_sent == 0

    def test_utilization_tracks_offered_load_when_alone(self):
        """With no foreground traffic the wire busy fraction matches."""
        env = Environment()
        _, _, medium = make_lan(env, NetworkParams.standalone())
        background = BackgroundLoad(env, medium, 0.4, seed=7)
        env.run(until=10.0)
        assert background.utilization() == pytest.approx(0.4, abs=0.05)

    def test_transfer_slows_under_load_but_survives(self):
        idle, _ = run_blast_under_load(0.0)
        loaded, background = run_blast_under_load(0.6, seed=3)
        assert loaded.data_intact
        assert loaded.elapsed_s > idle.elapsed_s
        assert background.frames_sent > 0

    def test_elapsed_monotone_in_load(self):
        times = [run_blast_under_load(load, seed=5)[0].elapsed_s
                 for load in (0.0, 0.3, 0.6)]
        assert times == sorted(times)

    def test_deterministic_given_seed(self):
        a, _ = run_blast_under_load(0.5, seed=11)
        b, _ = run_blast_under_load(0.5, seed=11)
        assert a.elapsed_s == b.elapsed_s

    def test_degradation_is_bounded_by_wire_share(self):
        """The paper's protocols are copy-bound (wire ~38 % utilised), so
        even heavy cross traffic degrades blast far less than 1/(1-load)."""
        idle, _ = run_blast_under_load(0.0)
        loaded, _ = run_blast_under_load(0.8, seed=13)
        assert loaded.elapsed_s < idle.elapsed_s * 1.5
