"""Tests for the Monte Carlo strategy simulator (paper §3.2.3 mechanics)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RoundCostModel,
    run_trials,
    simulate_blast_transfer,
    simulate_saw_transfer,
    t_blast,
    t_single_exchange,
)
from repro.simnet import NetworkParams

PARAMS = NetworkParams.vkernel()
D = 64


@pytest.fixture()
def cost():
    return RoundCostModel(PARAMS)


class TestNoLossPaths:
    @pytest.mark.parametrize("strategy", ["full_no_nak", "full_nak",
                                          "gobackn", "selective"])
    def test_zero_loss_single_round(self, strategy, cost):
        sample = simulate_blast_transfer(
            strategy, D, 0.0, t_retry=1.0, cost=cost, rng=random.Random(1)
        )
        assert sample.rounds == 1
        assert sample.data_frames_sent == D
        assert sample.elapsed_s == pytest.approx(t_blast(D, PARAMS))

    def test_zero_loss_saw(self, cost):
        sample = simulate_saw_transfer(D, 0.0, 1.0, cost, random.Random(1))
        assert sample.data_frames_sent == D
        assert sample.elapsed_s == pytest.approx(D * t_single_exchange(PARAMS))


class TestValidation:
    def test_unknown_strategy(self, cost):
        with pytest.raises(ValueError):
            simulate_blast_transfer("warp", D, 0.0, 1.0, cost, random.Random(1))

    def test_invalid_d(self, cost):
        with pytest.raises(ValueError):
            simulate_blast_transfer("selective", 0, 0.0, 1.0, cost, random.Random(1))

    def test_pn_one_rejected(self, cost):
        with pytest.raises(ValueError):
            simulate_blast_transfer("selective", D, 1.0, 1.0, cost, random.Random(1))

    def test_seed_reproducibility(self):
        a = run_trials("gobackn", D, 1e-3, 500, t_retry=0.1, params=PARAMS, seed=5)
        b = run_trials("gobackn", D, 1e-3, 500, t_retry=0.1, params=PARAMS, seed=5)
        assert a == b


class TestStrategyBehaviour:
    def test_selective_resends_fewer_frames_than_gobackn(self):
        pn = 0.02
        go = run_trials("gobackn", D, pn, 2000, t_retry=0.1, params=PARAMS, seed=9)
        sel = run_trials("selective", D, pn, 2000, t_retry=0.1, params=PARAMS, seed=9)
        assert sel.mean_data_frames < go.mean_data_frames

    def test_gobackn_resends_fewer_frames_than_full(self):
        pn = 0.02
        full = run_trials("full_nak", D, pn, 2000, t_retry=0.1, params=PARAMS, seed=9)
        go = run_trials("gobackn", D, pn, 2000, t_retry=0.1, params=PARAMS, seed=9)
        assert go.mean_data_frames < full.mean_data_frames

    @pytest.mark.slow
    def test_figure6_sigma_ordering(self):
        """full-no-NAK >> full-NAK > gobackn >= selective (paper Figure 6)."""
        pn = 1e-3
        t0 = t_blast(D, PARAMS)
        kwargs = dict(n_trials=15_000, params=PARAMS, seed=21)
        no_nak = run_trials("full_no_nak", D, pn, t_retry=10 * t0, **kwargs)
        nak = run_trials("full_nak", D, pn, t_retry=10 * t0, **kwargs)
        go = run_trials("gobackn", D, pn, t_retry=10 * t0, **kwargs)
        sel = run_trials("selective", D, pn, t_retry=10 * t0, **kwargs)
        assert no_nak.std_s > 3 * nak.std_s
        assert nak.std_s > go.std_s
        assert sel.std_s <= go.std_s * 1.05  # close, selective no worse

    @pytest.mark.slow
    def test_gobackn_only_marginally_inferior_to_selective(self):
        """The paper's engineering conclusion: go-back-n is the strategy of
        choice because selective's improvement in *expected time* is not
        significant (a few percent at interface error rates)."""
        pn = 1e-3
        t0 = t_blast(D, PARAMS)
        kwargs = dict(n_trials=15_000, t_retry=10 * t0, params=PARAMS, seed=22)
        go = run_trials("gobackn", D, pn, **kwargs)
        sel = run_trials("selective", D, pn, **kwargs)
        assert go.mean_s <= sel.mean_s * 1.05
        # Both sit essentially at the error-free time.
        assert go.mean_s == pytest.approx(t0, rel=0.05)
        assert sel.mean_s == pytest.approx(t0, rel=0.05)

    @pytest.mark.slow
    def test_cumulative_full_retx_never_slower(self):
        """Receiver keeping packets across rounds can only help."""
        pn = 0.05
        fresh = run_trials("full_nak", D, pn, 4000, t_retry=0.1,
                           params=PARAMS, seed=3, cumulative=False)
        cumulative = run_trials("full_nak", D, pn, 4000, t_retry=0.1,
                                params=PARAMS, seed=3, cumulative=True)
        assert cumulative.mean_s <= fresh.mean_s

    @pytest.mark.slow
    def test_expected_time_near_error_free_in_flat_region(self):
        """§3.2 premise: at LAN error rates all strategies sit at ~T0(D)."""
        pn = 1e-5
        t0 = t_blast(D, PARAMS)
        for strategy in ("full_no_nak", "full_nak", "gobackn", "selective"):
            summary = run_trials(strategy, D, pn, 4000, t_retry=10 * t0,
                                 params=PARAMS, seed=2)
            assert summary.mean_s == pytest.approx(t0, rel=0.05)

    @given(
        pn=st.floats(0.0, 0.2),
        d=st.integers(1, 32),
        seed=st.integers(0, 1000),
        strategy=st.sampled_from(["full_no_nak", "full_nak", "gobackn", "selective"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_transfer_always_completes_and_time_positive(self, pn, d, seed, strategy):
        cost = RoundCostModel(PARAMS)
        sample = simulate_blast_transfer(
            strategy, d, pn, t_retry=0.5, cost=cost, rng=random.Random(seed)
        )
        assert sample.elapsed_s >= t_blast(d, PARAMS) * 0.999
        assert sample.rounds >= 1
        assert sample.data_frames_sent >= d
