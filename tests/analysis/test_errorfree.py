"""Tests for the closed-form error-free transfer times (paper §2.1.3)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    network_utilization,
    protocol_times,
    t_blast,
    t_double_buffered,
    t_single_exchange,
    t_sliding_window,
    t_stop_and_wait,
)
from repro.simnet import NetworkParams
from repro.simnet.params import CopyCostModel


@pytest.fixture()
def zero_latency():
    """Paper formulas ignore tau; this parameter set makes them literal."""
    return NetworkParams.standalone(propagation_delay_s=0.0)


class TestPaperAnchors:
    def test_single_exchange_accounted_total(self, zero_latency):
        """Table 2: the accounted 1-packet exchange is 3.91 ms."""
        assert t_single_exchange(zero_latency) == pytest.approx(3.91e-3, abs=1e-5)

    def test_single_exchange_observed_total(self):
        """Table 2: observed elapsed time is 4.08 ms (device latency)."""
        params = NetworkParams.standalone(observed=True, propagation_delay_s=0.0)
        assert t_single_exchange(params) == pytest.approx(4.08e-3, abs=1e-5)

    def test_vkernel_single_exchange(self):
        """Figure 5 parameters: T0(1) = 5.9 ms at the kernel level."""
        params = NetworkParams.vkernel()
        assert t_single_exchange(params) == pytest.approx(5.9e-3, abs=0.05e-3)

    def test_vkernel_blast_64(self):
        """Figure 5 parameters: T0(D=64) = 173 ms at the kernel level."""
        params = NetworkParams.vkernel()
        assert t_blast(64, params) == pytest.approx(173e-3, abs=1e-3)

    def test_utilization_38_percent_for_64k(self, zero_latency):
        """Paper: 'the network utilization is only 38 percent' at N=64."""
        assert network_utilization(64, zero_latency) == pytest.approx(0.38, abs=0.01)

    def test_intro_wire_only_estimates(self):
        """§2.1's naive wire-time arithmetic: T=820 us, Ta=51 us, tau<10 us."""
        p = NetworkParams.standalone()
        assert p.transmit_data_s * 1e6 == pytest.approx(820, abs=1)
        assert p.transmit_ack_s * 1e6 == pytest.approx(51, abs=1)
        assert p.propagation_delay_s <= 10e-6


class TestOrderings:
    @pytest.mark.parametrize("n", [3, 4, 16, 64, 256])
    def test_blast_fastest_then_sw_then_saw(self, n, zero_latency):
        blast = t_blast(n, zero_latency)
        sw = t_sliding_window(n, zero_latency)
        saw = t_stop_and_wait(n, zero_latency)
        assert blast < sw < saw

    def test_small_n_crossover_between_blast_and_sw(self, zero_latency):
        """T_SW - T_B = (N-2) x Ca: sliding window is marginally ahead for
        a single packet (one fewer ack copy), they tie at N=2, and blast
        wins beyond — the large-transfer regime the paper is about."""
        ca = zero_latency.copy_ack_s
        for n in (1, 2, 3, 8):
            gap = t_sliding_window(n, zero_latency) - t_blast(n, zero_latency)
            assert gap == pytest.approx((n - 2) * ca, abs=1e-12)

    def test_saw_roughly_twice_blast_at_64(self, zero_latency):
        """The headline measurement: SAW takes about twice blast's time."""
        ratio = t_stop_and_wait(64, zero_latency) / t_blast(64, zero_latency)
        assert 1.6 < ratio < 2.0

    def test_sw_within_ten_percent_of_blast(self, zero_latency):
        """'Sliding window protocols are slightly inferior to blast.'"""
        ratio = t_sliding_window(64, zero_latency) / t_blast(64, zero_latency)
        assert 1.0 < ratio < 1.1

    def test_double_buffering_beats_single(self, zero_latency):
        for n in (1, 8, 64):
            assert t_double_buffered(n, zero_latency) < t_blast(n, zero_latency)

    def test_double_buffered_wire_bound_branch(self):
        """With copies faster than the wire, dbuf is wire-limited (N x T)."""
        fast_copy = CopyCostModel(setup_s=10e-6, bytes_per_second=50e6)
        params = NetworkParams.standalone(
            copy_model=fast_copy, propagation_delay_s=0.0
        )
        assert params.copy_data_s < params.transmit_data_s
        n = 100
        expected = (
            n * params.transmit_data_s
            + 2 * params.copy_data_s
            + 2 * params.copy_ack_s
            + params.transmit_ack_s
        )
        assert t_double_buffered(n, params) == pytest.approx(expected)


class TestStructure:
    def test_formulas_linear_in_n(self, zero_latency):
        """All protocol times are affine in N; slopes match the paper."""
        p = zero_latency
        for fn, slope in [
            (t_stop_and_wait, 2 * p.copy_data_s + p.transmit_data_s
             + 2 * p.copy_ack_s + p.transmit_ack_s),
            (t_blast, p.copy_data_s + p.transmit_data_s),
            (t_sliding_window, p.copy_data_s + p.copy_ack_s + p.transmit_data_s),
            (t_double_buffered, p.copy_data_s),
        ]:
            measured = (fn(40, p) - fn(8, p)) / 32
            assert measured == pytest.approx(slope, rel=1e-12)

    def test_invalid_n_rejected(self, zero_latency):
        for fn in (t_stop_and_wait, t_blast, t_sliding_window,
                   t_double_buffered, network_utilization):
            with pytest.raises(ValueError):
                fn(0, zero_latency)

    def test_protocol_times_keys(self, zero_latency):
        times = protocol_times(4, zero_latency)
        assert set(times) == {
            "stop_and_wait", "sliding_window", "blast", "double_buffered",
        }
        assert times["blast"] == t_blast(4, zero_latency)

    def test_default_params_used_when_omitted(self):
        assert t_blast(4) == t_blast(4, NetworkParams.standalone())

    @given(n=st.integers(1, 500))
    @settings(max_examples=60)
    def test_utilization_bounded(self, n):
        u = network_utilization(n)
        assert 0.0 < u < 1.0

    @given(n=st.integers(1, 500))
    @settings(max_examples=60)
    def test_dbuf_never_beats_wire_or_copy_bound(self, n):
        """Double buffering cannot beat max(copy, wire) pipelining bounds."""
        p = NetworkParams.standalone(propagation_delay_s=0.0)
        lower = n * max(p.copy_data_s, p.transmit_data_s)
        assert t_double_buffered(n, p) > lower
