"""Tests for the multi-blast chunk-size model and optimiser."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    expected_multiblast_time,
    optimal_blast_size,
    t_blast,
)
from repro.simnet import NetworkParams

PARAMS = NetworkParams.standalone()


class TestExpectedMultiblastTime:
    def test_zero_loss_single_chunk(self):
        assert expected_multiblast_time(64, 64, 0.0, PARAMS) == pytest.approx(
            t_blast(64, PARAMS)
        )

    def test_zero_loss_chunking_adds_constants(self):
        one = expected_multiblast_time(64, 64, 0.0, PARAMS)
        four = expected_multiblast_time(64, 16, 0.0, PARAMS)
        # Three extra end-of-chunk exchanges, nothing else.
        per_chunk_constant = t_blast(16, PARAMS) - 16 * (
            PARAMS.copy_data_s + PARAMS.transmit_data_s
        )
        assert four - one == pytest.approx(3 * per_chunk_constant, rel=1e-9)

    def test_ragged_tail_accounted(self):
        ragged = expected_multiblast_time(70, 64, 0.0, PARAMS)
        expected = t_blast(64, PARAMS) + t_blast(6, PARAMS)
        assert ragged == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ValueError):
            expected_multiblast_time(0, 8, 0.0)
        with pytest.raises(ValueError):
            expected_multiblast_time(8, 0, 0.0)

    def test_matches_des_multiblast_mean(self):
        """Closed form vs the mechanistic engine under loss."""
        from repro.core import run_many

        pn = 2e-3
        summary = run_many(
            "multiblast", bytes(256 * 1024), error_p=pn, n_runs=60,
            params=PARAMS, seed=4, blast_packets=64, strategy="full_nak",
        )
        predicted = expected_multiblast_time(256, 64, pn, PARAMS)
        # The DES accumulates across rounds (slightly faster) and uses a
        # NAK (shorter failed rounds): the closed form upper-bounds it.
        assert summary.mean_s <= predicted * 1.02
        assert summary.mean_s >= expected_multiblast_time(256, 64, 0.0, PARAMS)


class TestOptimalBlastSize:
    def test_error_free_prefers_one_big_blast(self):
        b, _ = optimal_blast_size(256, 0.0, PARAMS)
        assert b == 256

    def test_optimum_shrinks_with_loss(self):
        sizes = [optimal_blast_size(1024, pn, PARAMS, max_blast=1024)[0]
                 for pn in (1e-5, 1e-4, 1e-3, 1e-2)]
        assert sizes == sorted(sizes, reverse=True)
        assert sizes[-1] < sizes[0] / 10

    def test_inverse_sqrt_scaling(self):
        """b* ~ 1/sqrt(p_n): a 100x loss increase shrinks b* ~10x."""
        b_low, _ = optimal_blast_size(2048, 1e-4, PARAMS, max_blast=2048)
        b_high, _ = optimal_blast_size(2048, 1e-2, PARAMS, max_blast=2048)
        assert b_low / b_high == pytest.approx(10, rel=0.35)

    def test_paper_blast_size_near_optimal_at_interface_rate(self):
        """At the paper's interface error rate the optimal chunk is ~64
        packets — the paper's own 64 KB blasts were (implicitly) well
        chosen for exactly the conditions it measured."""
        b, best = optimal_blast_size(1024, 1e-4, PARAMS, max_blast=1024)
        assert 40 <= b <= 110
        at_64 = expected_multiblast_time(1024, 64, 1e-4, PARAMS)
        assert at_64 <= best * 1.01

    def test_returns_time_consistent_with_objective(self):
        b, best = optimal_blast_size(100, 1e-3, PARAMS)
        assert best == pytest.approx(
            expected_multiblast_time(100, b, 1e-3, PARAMS)
        )

    @given(
        total=st.integers(1, 200),
        pn=st.floats(0.0, 0.05),
    )
    @settings(max_examples=40, deadline=None)
    def test_optimum_never_worse_than_endpoints(self, total, pn):
        _, best = optimal_blast_size(total, pn, PARAMS)
        assert best <= expected_multiblast_time(total, total, pn, PARAMS) + 1e-12
        assert best <= expected_multiblast_time(total, 1, pn, PARAMS) + 1e-12
