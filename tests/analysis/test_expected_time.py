"""Tests for expected-time-under-loss formulas (paper §3.1)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    expected_attempts,
    expected_time_blast,
    expected_time_saw,
    mean_retries,
    p_fail_blast,
    p_fail_saw_exchange,
)

# Figure 5 parameters from the paper (V-kernel level).
D = 64
T0_1 = 5.9e-3
T0_D = 173e-3


class TestFailureProbabilities:
    def test_saw_exchange_failure(self):
        assert p_fail_saw_exchange(0.0) == 0.0
        assert p_fail_saw_exchange(1.0) == 1.0
        assert p_fail_saw_exchange(0.1) == pytest.approx(1 - 0.81)

    def test_blast_failure(self):
        assert p_fail_blast(0.0, 64) == 0.0
        assert p_fail_blast(1.0, 64) == 1.0
        assert p_fail_blast(0.01, 9) == pytest.approx(1 - 0.99**10)

    def test_blast_failure_grows_with_d(self):
        probs = [p_fail_blast(1e-4, d) for d in (1, 8, 64, 512)]
        assert probs == sorted(probs)

    def test_validation(self):
        with pytest.raises(ValueError):
            p_fail_saw_exchange(-0.1)
        with pytest.raises(ValueError):
            p_fail_blast(0.5, 0)

    @given(pn=st.floats(0.0, 1.0), d=st.integers(1, 200))
    @settings(max_examples=80)
    def test_blast_failure_at_least_single_frame(self, pn, d):
        assert p_fail_blast(pn, d) >= pn - 1e-12


class TestRetries:
    def test_no_errors_no_retries(self):
        assert mean_retries(0.0) == 0.0
        assert expected_attempts(0.0) == 1.0

    def test_certain_failure_infinite(self):
        assert mean_retries(1.0) == math.inf

    def test_half_failure_one_retry(self):
        assert mean_retries(0.5) == pytest.approx(1.0)
        assert expected_attempts(0.5) == pytest.approx(2.0)


class TestExpectedTimes:
    def test_zero_loss_is_error_free_time(self):
        assert expected_time_saw(D, T0_1, 10 * T0_1, 0.0) == pytest.approx(D * T0_1)
        assert expected_time_blast(D, T0_D, T0_D, 0.0) == pytest.approx(T0_D)

    def test_blast_beats_saw_at_lan_error_rates(self):
        """Figure 5: over p_n in [1e-5, 1e-4], blast wins decisively."""
        for pn in (1e-6, 1e-5, 1e-4):
            saw = expected_time_saw(D, T0_1, 10 * T0_1, pn)
            blast = expected_time_blast(D, T0_D, T0_D, pn)
            assert blast < saw
            # At these rates SAW is dominated by D x T0(1) ~= 378 ms vs 173.
            assert saw / blast > 1.8

    def test_blast_flat_region_at_network_error_rate(self):
        """At p_n = 1e-5, blast's expected time is ~ its error-free time."""
        blast = expected_time_blast(D, T0_D, T0_D, 1e-5)
        assert blast == pytest.approx(T0_D, rel=0.01)

    def test_blast_knee_at_interface_error_rate(self):
        """At p_n = 1e-4 (interface errors) the knee begins: a small but
        visible penalty, yet expected time still clearly better than SAW."""
        blast = expected_time_blast(D, T0_D, T0_D, 1e-4)
        assert 1.005 < blast / T0_D < 1.05

    def test_saw_retry_interval_matters_more_at_high_pn(self):
        slow = expected_time_saw(D, T0_1, 100 * T0_1, 1e-3)
        fast = expected_time_saw(D, T0_1, 10 * T0_1, 1e-3)
        assert slow > fast
        # And at negligible pn they coincide.
        assert expected_time_saw(D, T0_1, 100 * T0_1, 1e-9) == pytest.approx(
            expected_time_saw(D, T0_1, 10 * T0_1, 1e-9), rel=1e-6
        )

    def test_monotone_in_pn(self):
        pns = [0.0, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1]
        blast = [expected_time_blast(D, T0_D, T0_D, pn) for pn in pns]
        saw = [expected_time_saw(D, T0_1, 10 * T0_1, pn) for pn in pns]
        assert blast == sorted(blast)
        assert saw == sorted(saw)

    def test_d_one_blast_equals_saw_with_same_inputs(self):
        """For a single packet the two formulas coincide structurally."""
        t_saw = expected_time_saw(1, T0_1, 5 * T0_1, 1e-3)
        t_blast = expected_time_blast(1, T0_1, 5 * T0_1, 1e-3)
        assert t_saw == pytest.approx(t_blast)

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            expected_time_saw(0, T0_1, T0_1, 0.1)
        with pytest.raises(ValueError):
            expected_time_blast(0, T0_D, T0_D, 0.1)

    @given(
        pn=st.floats(0.0, 0.5),
        d=st.integers(1, 128),
        tr_factor=st.floats(0.1, 100.0),
    )
    @settings(max_examples=80)
    def test_expected_time_at_least_error_free(self, pn, d, tr_factor):
        t0 = 173e-3
        assert expected_time_blast(d, t0, tr_factor * t0, pn) >= t0 - 1e-12
