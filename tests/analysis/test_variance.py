"""Tests for the standard-deviation models, validated against Monte Carlo."""

import math

import pytest

from repro.analysis import (
    geometric_failure_std,
    run_trials,
    stddev_full_no_nak,
    stddev_full_with_nak,
    stddev_full_with_nak_exact,
)
from repro.simnet import NetworkParams

D = 64
PARAMS = NetworkParams.vkernel()


class TestGeometricStd:
    def test_zero_failure_probability(self):
        assert geometric_failure_std(0.0, 1.0) == 0.0

    def test_certain_failure_infinite(self):
        assert geometric_failure_std(1.0, 1.0) == math.inf

    def test_closed_form_value(self):
        # F ~ geometric(p=0.5 failure): Var = .5/.25 = 2, sigma = sqrt(2).
        assert geometric_failure_std(0.5, 1.0) == pytest.approx(math.sqrt(2))

    def test_validation(self):
        with pytest.raises(ValueError):
            geometric_failure_std(-0.1, 1.0)
        with pytest.raises(ValueError):
            geometric_failure_std(0.5, -1.0)


class TestClosedFormsAgainstMonteCarlo:
    """The formulas and the paper-style simulator must agree — this is the
    repository's defence against the OCR-garbled printed formulas."""

    @pytest.mark.parametrize("pn", [3e-4, 1e-3])
    def test_full_no_nak_std_matches_mc(self, pn):
        t0 = 173e-3
        tr = 10 * t0
        summary = run_trials(
            "full_no_nak", D, pn, n_trials=20_000, t_retry=tr,
            params=PARAMS, seed=42,
        )
        predicted = stddev_full_no_nak(D, t0, tr, pn)
        assert summary.std_s == pytest.approx(predicted, rel=0.12)

    @pytest.mark.parametrize("pn", [3e-4, 1e-3])
    @pytest.mark.parametrize("tr_factor", [1.0, 10.0])
    def test_full_nak_std_matches_exact_formula(self, pn, tr_factor):
        from repro.analysis import t_blast

        t0 = t_blast(D, PARAMS)
        tr = tr_factor * t0
        summary = run_trials(
            "full_nak", D, pn, n_trials=20_000, t_retry=tr,
            params=PARAMS, seed=43,
        )
        predicted = stddev_full_with_nak_exact(D, t0, tr, pn)
        assert summary.std_s == pytest.approx(predicted, rel=0.12)

    def test_paper_approximation_valid_when_timer_term_small(self):
        """The paper's sigma ~ T0 sqrt(pc)/(1-pc) emerges from the exact
        formula when the timer fallback is negligible (small T_r)."""
        pn = 1e-3
        t0 = 173e-3
        approx = stddev_full_with_nak(D, t0, pn)
        exact_small_tr = stddev_full_with_nak_exact(D, t0, 0.1 * t0, pn)
        assert exact_small_tr == pytest.approx(approx, rel=0.05)
        # ...and the approximation understates sigma for huge T_r.
        exact_large_tr = stddev_full_with_nak_exact(D, t0, 100 * t0, pn)
        assert exact_large_tr > 1.5 * approx

    def test_no_nak_mean_matches_expected_time_formula(self):
        from repro.analysis import expected_time_blast, t_blast

        pn = 1e-3
        t0 = t_blast(D, PARAMS)
        tr = 2 * t0
        summary = run_trials(
            "full_no_nak", D, pn, n_trials=20_000, t_retry=tr,
            params=PARAMS, seed=44,
        )
        predicted = expected_time_blast(D, t0, tr, pn)
        assert summary.mean_s == pytest.approx(predicted, rel=0.03)


class TestFigure6Orderings:
    """The qualitative content of paper Figure 6."""

    def test_no_nak_sigma_scales_with_retry_interval(self):
        pn = 1e-4
        t0 = 173e-3
        small = stddev_full_no_nak(D, t0, t0, pn)
        large = stddev_full_no_nak(D, t0, 100 * t0, pn)
        assert large / small > 10

    def test_nak_decouples_sigma_from_retry_interval(self):
        """Paper: 'the standard deviation when using full retransmission
        with a negative acknowledgement is all but independent from the
        retransmission interval'.  Quantified with the exact formulas:
        multiplying T_r by 100 blows no-NAK sigma up ~50x but moves
        with-NAK sigma far less (only its rare timer-fallback term)."""
        pn = 1e-4
        t0 = 173e-3
        no_nak_growth = stddev_full_no_nak(D, t0, 100 * t0, pn) / stddev_full_no_nak(
            D, t0, t0, pn
        )
        nak_growth = stddev_full_with_nak_exact(
            D, t0, 100 * t0, pn
        ) / stddev_full_with_nak_exact(D, t0, t0, pn)
        assert no_nak_growth > 40
        # With-NAK still has the rare timer fallback (~2 p_n per round),
        # so it is not perfectly flat — but its growth is well under half
        # of no-NAK's, and for D=64 its Tr-dominated sigma stays ~sqrt((D+1)/2)
        # ~ 5.7x below no-NAK's (asserted in test_nak_beats_no_nak).
        assert nak_growth < no_nak_growth / 2

    def test_nak_beats_no_nak(self):
        pn = 1e-4
        t0 = 173e-3
        for tr_factor in (1.0, 10.0, 100.0):
            tr = tr_factor * t0
            assert stddev_full_with_nak_exact(D, t0, tr, pn) < stddev_full_no_nak(
                D, t0, tr, pn
            )

    def test_sigma_monotone_in_pn(self):
        t0 = 173e-3
        sigmas = [stddev_full_no_nak(D, t0, t0, pn)
                  for pn in (1e-6, 1e-5, 1e-4, 1e-3)]
        assert sigmas == sorted(sigmas)
