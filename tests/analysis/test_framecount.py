"""Tests for expected data-frame counts, validated against the MC and DES."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    expected_frames_full,
    expected_frames_saw,
    expected_frames_selective,
    goodput_full,
    goodput_selective,
    run_trials,
)
from repro.simnet import NetworkParams

D = 32
PARAMS = NetworkParams.standalone()


class TestClosedForms:
    def test_zero_loss(self):
        assert expected_frames_full(D, 0.0) == D
        assert expected_frames_selective(D, 0.0) == D
        assert expected_frames_saw(D, 0.0) == D

    def test_validation(self):
        for fn in (expected_frames_full, expected_frames_selective,
                   expected_frames_saw):
            with pytest.raises(ValueError):
                fn(0, 0.1)
            with pytest.raises(ValueError):
                fn(D, 1.0)

    def test_goodput_complements(self):
        assert goodput_full(D, 1e-3) == pytest.approx(
            D / expected_frames_full(D, 1e-3)
        )
        assert goodput_selective(D, 1e-3) == pytest.approx(
            D / expected_frames_selective(D, 1e-3)
        )

    @given(pn=st.floats(0.0, 0.3), d=st.integers(1, 128))
    @settings(max_examples=80)
    def test_ordering_property(self, pn, d):
        """Selective is the floor; full retransmission is the ceiling;
        stop-and-wait sits between them (retries whole exchanges but only
        one packet at a time)."""
        selective = expected_frames_selective(d, pn)
        saw = expected_frames_saw(d, pn)
        full = expected_frames_full(d, pn)
        assert d <= selective <= saw + 1e-9
        assert saw <= full + 1e-9


class TestAgainstMonteCarlo:
    def test_full_retransmission_matches(self):
        pn = 5e-3
        summary = run_trials(
            "full_nak", D, pn, n_trials=20_000, t_retry=0.1,
            params=PARAMS, seed=5,
        )
        assert summary.mean_data_frames == pytest.approx(
            expected_frames_full(D, pn), rel=0.02
        )

    def test_selective_close_to_lower_bound(self):
        """The MC counts the reliable last packet's retries too, so it
        sits slightly above the closed-form floor but below go-back-n."""
        pn = 5e-3
        selective = run_trials(
            "selective", D, pn, n_trials=20_000, t_retry=0.1,
            params=PARAMS, seed=6,
        )
        gobackn = run_trials(
            "gobackn", D, pn, n_trials=20_000, t_retry=0.1,
            params=PARAMS, seed=6,
        )
        floor = expected_frames_selective(D, pn)
        assert floor <= selective.mean_data_frames <= floor * 1.05
        assert selective.mean_data_frames <= gobackn.mean_data_frames
        assert gobackn.mean_data_frames <= expected_frames_full(D, pn)

    def test_saw_matches(self):
        pn = 5e-3
        summary = run_trials(
            "saw", D, pn, n_trials=20_000, t_retry=0.1, params=PARAMS, seed=7,
        )
        assert summary.mean_data_frames == pytest.approx(
            expected_frames_saw(D, pn), rel=0.02
        )

    def test_des_bounded_by_closed_form(self):
        """The DES receiver accumulates packets across rounds, so it
        needs *fewer* frames than the independent-rounds closed form —
        and never fewer than the selective floor."""
        from repro.core import run_many

        pn = 0.01
        summary = run_many(
            "blast", bytes(D * 1024), error_p=pn, n_runs=100,
            params=PARAMS, seed=8, strategy="full_nak",
        )
        assert (
            expected_frames_selective(D, pn)
            <= summary.mean_data_frames
            <= expected_frames_full(D, pn) * 1.02
        )
