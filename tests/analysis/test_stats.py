"""Tests for the statistics helpers (validated against scipy)."""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    mean_ci,
    percentile,
    run_trials,
    summarize,
    tail_ratio,
)

samples_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
    min_size=1,
    max_size=200,
)


class TestMeanCi:
    def test_single_sample_collapses(self):
        assert mean_ci([5.0]) == (5.0, 5.0, 5.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mean_ci([])

    def test_confidence_validated(self):
        with pytest.raises(ValueError):
            mean_ci([1.0, 2.0], confidence=1.5)

    def test_interval_brackets_mean(self):
        mean, low, high = mean_ci([1.0, 2.0, 3.0, 4.0])
        assert low < mean < high
        assert mean == pytest.approx(2.5)

    def test_matches_scipy_normal_interval(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        rng = random.Random(1)
        samples = [rng.gauss(10, 2) for _ in range(100)]
        mean, low, high = mean_ci(samples, 0.95)
        import statistics

        sem = statistics.stdev(samples) / math.sqrt(len(samples))
        expected = scipy_stats.norm.interval(0.95, loc=mean, scale=sem)
        assert low == pytest.approx(expected[0], rel=1e-9)
        assert high == pytest.approx(expected[1], rel=1e-9)

    def test_coverage_simulation(self):
        """~95 % of intervals contain the true mean."""
        rng = random.Random(7)
        hits = 0
        trials = 400
        for _ in range(trials):
            samples = [rng.gauss(0.0, 1.0) for _ in range(50)]
            _, low, high = mean_ci(samples, 0.95)
            hits += low <= 0.0 <= high
        assert hits / trials == pytest.approx(0.95, abs=0.04)

    @given(samples=samples_strategy)
    @settings(max_examples=80)
    def test_interval_ordering_property(self, samples):
        mean, low, high = mean_ci(samples)
        assert low <= mean <= high


class TestPercentile:
    def test_endpoints(self):
        data = [3.0, 1.0, 2.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 3.0
        assert percentile(data, 50) == 2.0

    def test_interpolation(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_matches_numpy_linear(self):
        numpy = pytest.importorskip("numpy")
        rng = random.Random(3)
        samples = [rng.random() for _ in range(57)]
        for q in (10, 42.5, 90, 99):
            assert percentile(samples, q) == pytest.approx(
                float(numpy.percentile(samples, q)), rel=1e-9
            )

    @given(samples=samples_strategy, q=st.floats(0, 100))
    @settings(max_examples=100)
    def test_bounds_property(self, samples, q):
        value = percentile(samples, q)
        assert min(samples) <= value <= max(samples)


class TestSummarize:
    def test_fields_consistent(self):
        rng = random.Random(5)
        samples = [rng.expovariate(1.0) for _ in range(500)]
        summary = summarize(samples)
        assert summary.n == 500
        assert summary.minimum <= summary.p50 <= summary.p90 <= summary.p99
        assert summary.p99 <= summary.maximum
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_tail_ratio_matches_helper(self):
        samples = [1.0] * 99 + [10.0]
        summary = summarize(samples)
        assert summary.tail_ratio_99 == pytest.approx(tail_ratio(samples), rel=0.1)

    def test_constant_samples(self):
        summary = summarize([2.0] * 10)
        assert summary.std == 0.0
        assert summary.tail_ratio_99 == 1.0


class TestTailRatioOnProtocols:
    def test_no_nak_has_much_fatter_tail_than_gobackn(self):
        """The sigma argument restated as tail latency: at interface-grade
        loss with a realistic timer, the no-NAK strategy's p99 is far
        above its median, go-back-n's barely."""
        from repro.analysis.montecarlo import RoundCostModel, simulate_blast_transfer
        from repro.simnet import NetworkParams

        params = NetworkParams.vkernel()
        cost = RoundCostModel(params)
        rng = random.Random(9)
        t0 = cost.t0(64)
        tails = {}
        for strategy in ("full_no_nak", "gobackn"):
            samples = [
                simulate_blast_transfer(
                    strategy, 64, 2e-3, 10 * t0, cost, rng
                ).elapsed_s
                for _ in range(3000)
            ]
            tails[strategy] = tail_ratio(samples)
        assert tails["full_no_nak"] > 5
        assert tails["gobackn"] < 2
