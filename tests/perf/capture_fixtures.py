"""Record seed-kernel fixtures for the fastpath-equivalence tests.

Run once against the *seed* (pre-optimization) kernel and codec; the
recorded traces, wire bytes and digests become the contract that the
optimized fast path must reproduce byte-for-byte:

    PYTHONPATH=src python tests/perf/capture_fixtures.py

The outputs are committed under ``tests/perf/fixtures/``; re-running
against an equivalent kernel must be a no-op diff.
"""

from __future__ import annotations

import json
import os

from repro.perf import workloads

FIXTURES = os.path.join(os.path.dirname(os.path.abspath(__file__)), "fixtures")


def main() -> None:
    os.makedirs(FIXTURES, exist_ok=True)

    datagrams = workloads.canonical_datagrams()
    with open(os.path.join(FIXTURES, "wire_frames.hex"), "w") as handle:
        for datagram in datagrams:
            handle.write(datagram.hex() + "\n")

    digests = {"wire": workloads.wire_digest(datagrams),
               "kernel": workloads.kernel_digest()}

    for protocol in workloads.CANONICAL_TRACE_PROTOCOLS:
        ascii_art, span_digest = workloads.canonical_trace(protocol)
        path = os.path.join(FIXTURES, f"trace_{protocol}.txt")
        with open(path, "w") as handle:
            handle.write(ascii_art)
        digests[f"trace:{protocol}"] = span_digest
        digests[f"run_many:{protocol}"] = workloads.run_digest(protocol, n_jobs=1)

    with open(os.path.join(FIXTURES, "seed_digests.json"), "w") as handle:
        json.dump(digests, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for key in sorted(digests):
        print(f"{key}: {digests[key]}")
    print(f"wrote fixtures to {FIXTURES}")


if __name__ == "__main__":
    main()
