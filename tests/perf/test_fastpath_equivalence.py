"""The optimized fast path must reproduce seed-kernel output byte-for-byte.

The fixtures under ``tests/perf/fixtures/`` were recorded by running
``capture_fixtures.py`` against the pre-optimization (seed) kernel and
codec.  Every test here replays the same canonical workload on the live
code and compares bytes/digests against that recording — so any
behaviour change smuggled in under the banner of "just a speedup" fails
loudly.
"""

import dataclasses
import json
from pathlib import Path

import pytest

from repro.core.wire import decode
from repro.perf import workloads

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture(scope="module")
def seed_digests():
    return json.loads((FIXTURES / "seed_digests.json").read_text())


def test_encode_bytes_match_seed_fixture(seed_digests):
    recorded = [
        bytes.fromhex(line)
        for line in (FIXTURES / "wire_frames.hex").read_text().splitlines()
        if line
    ]
    live = workloads.canonical_datagrams()
    assert live == recorded
    assert workloads.wire_digest(live) == seed_digests["wire"]


def test_decode_round_trips_recorded_datagrams():
    frames = workloads.canonical_frames()
    for frame, datagram in zip(frames, workloads.canonical_datagrams()):
        decoded = decode(datagram)
        assert dataclasses.replace(decoded, wire_bytes=frame.wire_bytes) == frame


def test_kernel_digest_matches_seed(seed_digests):
    assert workloads.kernel_digest() == seed_digests["kernel"]


@pytest.mark.parametrize("protocol", workloads.CANONICAL_TRACE_PROTOCOLS)
def test_trace_matches_seed_fixture(protocol, seed_digests):
    ascii_art, span_digest = workloads.canonical_trace(protocol)
    assert span_digest == seed_digests[f"trace:{protocol}"]
    assert ascii_art == (FIXTURES / f"trace_{protocol}.txt").read_text()


@pytest.mark.parametrize("n_jobs", [1, 2])
@pytest.mark.parametrize("protocol", workloads.CANONICAL_TRACE_PROTOCOLS)
def test_run_many_digest_matches_seed_for_any_jobs(protocol, n_jobs, seed_digests):
    digest = workloads.run_digest(protocol, n_jobs=n_jobs)
    assert digest == seed_digests[f"run_many:{protocol}"]
