"""Structure ledger and bench-report schema of the perf subsystem.

The timings a perf run reports are machine facts and never asserted;
everything else — suite registry, canonical workload sizes, determinism
digests, the JSON schema of ``BENCH_fastpath.json``, and the golden
structure ledger — is a contract and is pinned here.
"""

from pathlib import Path

import pytest

from repro.perf.report import (
    BENCH_SCHEMA,
    BENCH_SCHEMA_VERSION,
    bench_payload,
    check_ledger,
    render_ledger,
    render_table,
)
from repro.perf.suites import SuiteResult, run_suites, suite_names

GOLDEN_LEDGER = (
    Path(__file__).parents[2] / "benchmarks" / "results" / "perf_structure.txt"
)

AB_SUITES = (
    "des_events",
    "des_process",
    "codec_encode",
    "codec_decode",
    "service_udp_throughput",
    "service_udp_clients",
    "service_sched_scale",
)


@pytest.fixture(scope="module")
def results():
    # One smoke pass with a single repeat: fast enough for CI, and the
    # structure rows it produces are identical to a full run's.
    return run_suites(smoke=True, repeats=1)


def test_suite_registry_is_stable():
    assert suite_names() == [
        "des_events",
        "des_process",
        "codec_encode",
        "codec_decode",
        "conformance_cell",
        "service_run",
        "service_udp_throughput",
        "service_udp_clients",
        "cluster_udp_goodput",
        "service_sched_scale",
    ]


def test_structure_ledger_matches_golden(results):
    assert render_ledger(results) == GOLDEN_LEDGER.read_text()


def test_check_ledger_accepts_suite_subsets(results):
    assert check_ledger(results[:2], str(GOLDEN_LEDGER)) is None


def test_check_ledger_reports_drift(results, tmp_path):
    drifted = tmp_path / "ledger.txt"
    drifted.write_text(
        GOLDEN_LEDGER.read_text().replace("digest=", "digest=f00d", 1)
    )
    report = check_ledger(results, str(drifted))
    assert report is not None and "drifted" in report


def test_bench_payload_schema(results):
    payload = bench_payload(results, mode="smoke")
    assert payload["schema"] == BENCH_SCHEMA
    assert payload["schema_version"] == BENCH_SCHEMA_VERSION
    assert payload["mode"] == "smoke"
    assert set(payload["suites"]) == set(suite_names())
    for name, entry in payload["suites"].items():
        assert entry["iterations"] > 0
        assert entry["best_s"] > 0
        assert entry["ops_per_s"] > 0
        assert len(entry["digest"]) == 64
        if name in AB_SUITES:
            assert entry["baseline_best_s"] > 0
            assert entry["baseline_ops_per_s"] > 0
            assert entry["speedup_vs_baseline"] > 0
        else:
            assert "speedup_vs_baseline" not in entry


def test_clients_suite_exports_goodput_extras(results):
    payload = bench_payload(results, mode="smoke")
    extras = payload["suites"]["service_udp_clients"]["extras"]
    cells = extras["per_client_goodput"]
    assert [cell["clients"] for cell in cells] == [4, 8, 16]
    for cell in cells:
        assert cell["ok"] == cell["clients"]
        assert cell["per_client_goodput_bytes_per_s"] > 0
    # extras are machine facts: bench JSON only, never the ledger.
    assert "extras" not in render_ledger(results)


def test_sched_suite_exports_scale_extras(results):
    payload = bench_payload(results, mode="smoke")
    cells = payload["suites"]["service_sched_scale"]["extras"]["sched_scale"]
    assert [cell["streams"] for cell in cells] == [256]
    for cell in cells:
        assert cell["indexed_best_s"] > 0
        assert cell["legacy_best_s"] > 0
        assert cell["speedup"] > 0
    assert "extras" not in render_ledger(results)


def test_render_table_lists_every_suite(results):
    table = render_table(results)
    for name in suite_names():
        assert name in table


def test_ledger_line_carries_no_timings():
    result = SuiteResult(
        name="demo",
        iterations=123,
        repeats=3,
        best_s=0.5,
        ops_per_s=246.0,
        digest="d" * 64,
        canonical_ops=42,
        baseline_best_s=1.0,
        baseline_ops_per_s=123.0,
        speedup_vs_baseline=2.0,
    )
    assert result.ledger_line() == f"demo canonical_ops=42 digest={'d' * 64}"


def test_unknown_suite_name_is_rejected():
    with pytest.raises(ValueError, match="unknown suite"):
        run_suites(names=["no_such_suite"])


def test_repeats_must_be_positive():
    with pytest.raises(ValueError, match="repeats"):
        run_suites(names=["codec_encode"], repeats=0)
