"""Fault injection on the V-kernel IPC path and MoveTo bulk transfers."""

from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.scripted import ScriptedErrors
from repro.faults.vkernel import IpcFaultHook
from repro.sim import Environment
from repro.simnet import NetworkParams, make_lan
from repro.vkernel import VKernel
from repro.vkernel.messages import MessageFrame, MessageKind, ProcessRef


def _plan(*rules, name="t", seed=0):
    return FaultPlan(name=name, rules=tuple(rules), seed=seed)


def _frame(kind, msg_id=1):
    return MessageFrame(kind, ProcessRef(1, 1), ProcessRef(2, 1), msg_id, ("x",))


class TestIpcFaultHook:
    def test_requests_are_the_send_stream(self):
        hook = IpcFaultHook(
            _plan(FaultRule(action="drop", kinds=("control",), direction="send"))
        )
        assert hook.decide(_frame(MessageKind.SEND)).drop
        assert not hook.decide(_frame(MessageKind.REPLY)).drop
        assert hook.frames_seen == 2
        assert hook.frames_dropped == 1

    def test_replies_are_the_recv_stream(self):
        hook = IpcFaultHook(
            _plan(FaultRule(action="drop", kinds=("control",), direction="recv"))
        )
        assert not hook.decide(_frame(MessageKind.SEND)).drop
        assert hook.decide(_frame(MessageKind.REPLY)).drop

    def test_seq_matches_message_id(self):
        hook = IpcFaultHook(
            _plan(FaultRule(action="drop", kinds=("control",), seqs=(3,)))
        )
        assert not hook.decide(_frame(MessageKind.SEND, msg_id=2)).drop
        assert hook.decide(_frame(MessageKind.SEND, msg_id=3)).drop

    def test_detectable_corruption_degrades_to_drop(self):
        hook = IpcFaultHook(
            _plan(FaultRule(action="corrupt", kinds=("control",), indices=(0,)))
        )
        decision = hook.decide(_frame(MessageKind.SEND))
        assert decision.drop
        assert not decision.corrupt

    def test_reorder_degrades_to_delay(self):
        hook = IpcFaultHook(
            _plan(
                FaultRule(action="reorder", kinds=("control",), indices=(0,), depth=4),
            ),
            reorder_unit_s=0.01,
        )
        decision = hook.decide(_frame(MessageKind.SEND))
        assert not decision.drop
        assert hook.extra_delay_s(decision) == 4 * 0.01


def _kernels(env, client_faults=None, server_faults=None, send_timeout_s=0.05):
    host_a, host_b, _ = make_lan(env, NetworkParams.vkernel())
    ka = VKernel(env, host_a, kernel_id=1, send_timeout_s=send_timeout_s,
                 ipc_faults=client_faults)
    kb = VKernel(env, host_b, kernel_id=2, send_timeout_s=send_timeout_s,
                 ipc_faults=server_faults)
    return ka, kb


def _rendezvous(env, ka, kb):
    """Run one Send/Receive/Reply exchange; returns (result, executions)."""
    client = ka.create_process("client")
    server = kb.create_process("server")
    executions = []

    def server_body():
        while True:
            request = yield from kb.receive(server)
            executions.append(request.msg_id)
            yield from kb.reply(server, request, "done", len(executions))

    def client_body():
        reply = yield from ka.send(client, server.ref, "work")
        return reply

    env.process(server_body())
    proc = env.process(client_body())
    return env.run(proc), executions


class TestRendezvousUnderFaults:
    def test_dropped_request_is_retried(self):
        env = Environment()
        hook = IpcFaultHook(
            _plan(FaultRule(action="drop", kinds=("control",),
                            direction="send", indices=(0,)))
        )
        ka, kb = _kernels(env, client_faults=hook)
        result, executions = _rendezvous(env, ka, kb)
        assert result == ("done", 1)
        assert executions == [1]  # retry delivered it exactly once
        assert hook.frames_dropped == 1
        assert env.now >= 0.05  # at least one retransmission interval

    def test_dropped_reply_replayed_from_cache(self):
        env = Environment()
        hook = IpcFaultHook(
            _plan(FaultRule(action="drop", kinds=("control",),
                            direction="recv", indices=(0,)))
        )
        ka, kb = _kernels(env, server_faults=hook)
        result, executions = _rendezvous(env, ka, kb)
        assert result == ("done", 1)
        # The server body ran once; the lost reply was replayed, not
        # re-executed.
        assert executions == [1]
        assert hook.frames_dropped == 1

    def test_duplicated_request_suppressed(self):
        env = Environment()
        hook = IpcFaultHook(
            _plan(FaultRule(action="duplicate", kinds=("control",),
                            direction="send", indices=(0,), count=2))
        )
        ka, kb = _kernels(env, client_faults=hook)
        result, executions = _rendezvous(env, ka, kb)
        assert result == ("done", 1)
        assert executions == [1]  # duplicates swallowed by the dedup table
        assert hook.frames_duplicated == 2

    def test_delayed_request_still_completes(self):
        env = Environment()
        hook = IpcFaultHook(
            _plan(FaultRule(action="delay", kinds=("control",),
                            direction="send", indices=(0,), delay_s=0.02))
        )
        ka, kb = _kernels(env, client_faults=hook)
        result, executions = _rendezvous(env, ka, kb)
        assert result == ("done", 1)
        assert executions == [1]
        assert env.now >= 0.02

    def test_faultless_hook_changes_nothing(self):
        baseline_env = Environment()
        ka, kb = _kernels(baseline_env)
        baseline, _ = _rendezvous(baseline_env, ka, kb)

        env = Environment()
        hook = IpcFaultHook(_plan())
        ka, kb = _kernels(env, client_faults=hook, server_faults=None)
        result, _ = _rendezvous(env, ka, kb)
        assert result == baseline
        assert hook.frames_dropped == 0


class TestMoveUnderScriptedLan:
    def test_move_to_survives_scripted_data_loss(self):
        env = Environment()
        plan = _plan(
            FaultRule(action="drop", kinds=("data",), indices=(1,)),
            FaultRule(action="duplicate", kinds=("data",), indices=(3,)),
        )
        host_a, host_b, _ = make_lan(
            env, NetworkParams.vkernel(), error_model=ScriptedErrors(plan)
        )
        ka = VKernel(env, host_a, kernel_id=1)
        kb = VKernel(env, host_b, kernel_id=2)
        mover = ka.create_process("mover")
        sink = kb.create_process("sink")
        payload = bytes(range(256)) * 24  # 6 KB across the blast engine
        sink.allocate("inbox", len(payload))

        def body():
            result = yield from ka.move_to(
                mover, sink.ref, "inbox", payload, strategy="selective"
            )
            return result

        result = env.run(env.process(body()))
        assert result.ok
        assert sink.read_buffer("inbox") == payload
        assert result.stats.data_frames_sent > result.n_packets  # retransmitted

    def test_move_from_survives_scripted_reply_loss(self):
        env = Environment()
        plan = _plan(FaultRule(action="drop", kinds=("reply",), indices=(0,)))
        host_a, host_b, _ = make_lan(
            env, NetworkParams.vkernel(), error_model=ScriptedErrors(plan)
        )
        ka = VKernel(env, host_a, kernel_id=1)
        kb = VKernel(env, host_b, kernel_id=2)
        reader = ka.create_process("reader")
        source = kb.create_process("source")
        payload = bytes(reversed(range(256))) * 20
        source.write_buffer("outbox", payload)

        def body():
            data = yield from ka.move_from(reader, source.ref, "outbox")
            return data

        assert env.run(env.process(body())) == payload
