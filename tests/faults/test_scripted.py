"""ScriptedErrors: replaying fault plans on the DES substrate."""

from repro.core.frames import AckFrame, DataFrame
from repro.core.runner import run_transfer
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.scripted import ScriptedErrors

DATA = bytes(range(256)) * 16  # 4 KB -> 4 packets


def _plan(*rules, name="t", seed=0):
    return FaultPlan(name=name, rules=tuple(rules), seed=seed)


def _data_frame(seq, total=4):
    return DataFrame(transfer_id=1, seq=seq, total=total, payload=b"p" * 8)


class TestModelHooks:
    def test_drop_decision_cached_for_frame(self):
        model = ScriptedErrors(
            _plan(FaultRule(action="drop", kinds=("data",), indices=(1,)))
        )
        assert not model.drops(_data_frame(0))
        assert model.drops(_data_frame(1))
        assert not model.drops(_data_frame(2))
        assert model.frames_seen == 3
        assert model.faults_fired == 1

    def test_detectable_corruption_reports_as_loss(self):
        model = ScriptedErrors(
            _plan(FaultRule(action="corrupt", kinds=("data",), indices=(0,)))
        )
        assert model.drops(_data_frame(0))  # CRC-rejected = lost
        assert not model.corrupts(_data_frame(0))

    def test_silent_corruption_reports_as_corruption(self):
        model = ScriptedErrors(
            _plan(
                FaultRule(
                    action="corrupt", kinds=("data",), indices=(0,), silent=True
                )
            )
        )
        frame = _data_frame(0)
        assert not model.drops(frame)
        assert model.corrupts(frame)

    def test_duplicates_and_delay_follow_drop_evaluation(self):
        model = ScriptedErrors(
            _plan(
                FaultRule(action="duplicate", kinds=("data",), indices=(0,), count=2),
                FaultRule(action="delay", kinds=("data",), indices=(0,), delay_s=0.5),
            )
        )
        frame = _data_frame(0)
        assert not model.drops(frame)
        assert model.duplicates(frame) == 2
        assert model.delay_s(frame) == 0.5

    def test_reorder_degrades_to_delay(self):
        model = ScriptedErrors(
            _plan(FaultRule(action="reorder", kinds=("data",), indices=(0,), depth=3)),
            reorder_unit_s=0.01,
        )
        frame = _data_frame(0)
        assert not model.drops(frame)
        assert model.delay_s(frame) == 3 * 0.01

    def test_acks_classified_as_recv_stream(self):
        model = ScriptedErrors(
            _plan(FaultRule(action="drop", kinds=("reply",), direction="recv"))
        )
        assert model.drops(AckFrame(transfer_id=1, seq=0))
        assert not model.drops(_data_frame(0))

    def test_reset_rewinds_the_script(self):
        model = ScriptedErrors(
            _plan(FaultRule(action="drop", kinds=("data",), indices=(0,)))
        )
        assert model.drops(_data_frame(0))
        model.reset()
        assert model.drops(_data_frame(0))
        assert model.frames_seen == 1


class TestOnSimulatedLan:
    def test_clean_plan_changes_nothing(self):
        baseline = run_transfer("blast", DATA, strategy="gobackn")
        faulted = run_transfer(
            "blast", DATA, strategy="gobackn",
            error_model=ScriptedErrors(_plan()),
        )
        assert faulted.data_intact
        assert faulted.stats.data_frames_sent == baseline.stats.data_frames_sent
        assert faulted.elapsed_s == baseline.elapsed_s

    def test_dropped_data_forces_retransmission(self):
        result = run_transfer(
            "blast", DATA, strategy="gobackn",
            error_model=ScriptedErrors(
                _plan(FaultRule(action="drop", kinds=("data",), indices=(1,)))
            ),
        )
        assert result.data_intact
        assert result.stats.rounds >= 2
        assert result.stats.data_frames_sent > 4

    def test_duplicated_data_is_absorbed(self):
        result = run_transfer(
            "blast", DATA, strategy="selective",
            error_model=ScriptedErrors(
                _plan(
                    FaultRule(
                        action="duplicate", kinds=("data",), indices=(0, 1), count=2
                    )
                )
            ),
        )
        assert result.data_intact
        assert result.stats.rounds == 1  # duplicates never hurt progress

    def test_delayed_reply_is_survived(self):
        result = run_transfer(
            "blast", DATA, strategy="full_nak",
            error_model=ScriptedErrors(
                _plan(
                    FaultRule(
                        action="delay", kinds=("reply",), indices=(0,), delay_s=0.05
                    )
                )
            ),
        )
        assert result.data_intact

    def test_identical_seeds_reproduce_identical_runs(self):
        plan = _plan(
            FaultRule(action="drop", kinds=("data",), probability=0.3, times=5),
            FaultRule(action="drop", kinds=("reply",), probability=0.3, times=5),
            name="sto", seed=9,
        )
        results = [
            run_transfer(
                "blast", DATA, strategy="gobackn",
                error_model=ScriptedErrors(plan, seed=21),
            )
            for _ in range(2)
        ]
        assert results[0].elapsed_s == results[1].elapsed_s
        assert (
            results[0].stats.data_frames_sent == results[1].stats.data_frames_sent
        )
        assert results[0].data_intact and results[1].data_intact
