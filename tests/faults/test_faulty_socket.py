"""FaultySocket: plan replay over real loopback datagrams."""

import socket

import pytest

from repro.core.frames import DataFrame
from repro.core.wire import WireError, decode, encode
from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.socket import FaultySocket
from repro.simnet.errors import DeterministicDrops
from repro.udpnet.lossy import LossySocket


def _udp_socket():
    sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    sock.bind(("127.0.0.1", 0))
    return sock


def _datagram(seq, payload=b"payload!"):
    return encode(DataFrame(transfer_id=1, seq=seq, total=16, payload=payload))


def _plan(*rules, name="t", seed=0):
    return FaultPlan(name=name, rules=tuple(rules), seed=seed)


@pytest.fixture()
def pair():
    """(faulty, peer): a plan-free wrapper and a raw peer socket."""
    left = _udp_socket()
    right = _udp_socket()
    right.settimeout(2.0)
    yield left, right
    left.close()
    right.close()


def _wrap(raw, *rules, error_model=None, seed=0):
    plan = _plan(*rules, seed=seed) if rules else None
    return FaultySocket(raw, error_model=error_model, plan=plan)


class TestSendSide:
    def test_transparent_without_plan(self, pair):
        left, right = pair
        faulty = _wrap(left)
        faulty.sendto(_datagram(0), right.getsockname())
        datagram, _ = right.recvfrom(65536)
        assert decode(datagram).seq == 0
        assert faulty.datagrams_sent == 1
        assert faulty.datagrams_dropped == 0

    def test_plan_drop_swallows_datagram(self, pair):
        left, right = pair
        faulty = _wrap(
            left, FaultRule(action="drop", kinds=("data",), indices=(0,))
        )
        faulty.sendto(_datagram(0), right.getsockname())
        faulty.sendto(_datagram(1), right.getsockname())
        datagram, _ = right.recvfrom(65536)
        assert decode(datagram).seq == 1
        assert faulty.datagrams_dropped == 1
        assert faulty.loss_rate == 0.5
        assert faulty.faults_injected["drop"] == 1

    def test_plan_duplicate_sends_copies(self, pair):
        left, right = pair
        faulty = _wrap(
            left,
            FaultRule(action="duplicate", kinds=("data",), indices=(0,), count=2),
        )
        faulty.sendto(_datagram(0), right.getsockname())
        seqs = [decode(right.recvfrom(65536)[0]).seq for _ in range(3)]
        assert seqs == [0, 0, 0]
        assert faulty.faults_injected["duplicate"] == 2

    def test_plan_reorder_swaps_neighbours(self, pair):
        left, right = pair
        faulty = _wrap(
            left,
            FaultRule(action="reorder", kinds=("data",), indices=(0,), depth=1),
        )
        faulty.sendto(_datagram(0), right.getsockname())
        faulty.sendto(_datagram(1), right.getsockname())
        seqs = [decode(right.recvfrom(65536)[0]).seq for _ in range(2)]
        assert seqs == [1, 0]

    def test_plan_delay_holds_until_due(self, pair):
        left, right = pair
        faulty = _wrap(
            left,
            FaultRule(action="delay", kinds=("data",), indices=(0,), delay_s=0.05),
        )
        faulty.sendto(_datagram(0), right.getsockname())
        faulty.sendto(_datagram(1), right.getsockname())
        assert decode(right.recvfrom(65536)[0]).seq == 1
        # The next socket use past the due time releases the held datagram.
        import time

        time.sleep(0.06)
        faulty.sendto(_datagram(2), right.getsockname())
        seqs = [decode(right.recvfrom(65536)[0]).seq for _ in range(2)]
        assert sorted(seqs) == [0, 2]

    def test_detectable_corruption_fails_crc(self, pair):
        left, right = pair
        faulty = _wrap(
            left,
            FaultRule(action="corrupt", kinds=("data",), indices=(0,)),
        )
        faulty.sendto(_datagram(0), right.getsockname())
        datagram, _ = right.recvfrom(65536)
        with pytest.raises(WireError):
            decode(datagram)

    def test_silent_corruption_decodes_with_wrong_bytes(self, pair):
        left, right = pair
        faulty = _wrap(
            left,
            FaultRule(
                action="corrupt", kinds=("data",), indices=(0,),
                corrupt_mask=0x0F, silent=True,
            ),
        )
        faulty.sendto(_datagram(0, payload=b"payload!"), right.getsockname())
        frame = decode(right.recvfrom(65536)[0])
        assert frame.payload != b"payload!"
        assert len(frame.payload) == len(b"payload!")

    def test_legacy_error_model_still_applies(self, pair):
        left, right = pair
        faulty = _wrap(left, error_model=DeterministicDrops([0]))
        faulty.sendto(_datagram(0), right.getsockname())
        faulty.sendto(_datagram(1), right.getsockname())
        assert decode(right.recvfrom(65536)[0]).seq == 1
        assert faulty.datagrams_dropped == 1


class TestReceiveSide:
    def test_plan_drop_counts_on_recv_ledger(self, pair):
        left, right = pair
        faulty = _wrap(
            left, FaultRule(action="drop", kinds=("data",), direction="recv",
                            indices=(0,))
        )
        faulty.settimeout(2.0)
        right.sendto(_datagram(0), left.getsockname())
        right.sendto(_datagram(1), left.getsockname())
        datagram, _ = faulty.recvfrom(65536)
        assert decode(datagram).seq == 1
        assert faulty.datagrams_received == 2
        assert faulty.recv_dropped == 1
        assert faulty.recv_loss_rate == 0.5
        assert faulty.datagrams_dropped == 0  # send ledger untouched

    def test_plan_duplicate_replays_datagram(self, pair):
        left, right = pair
        faulty = _wrap(
            left,
            FaultRule(action="duplicate", kinds=("data",), direction="recv",
                      indices=(0,), count=1),
        )
        faulty.settimeout(2.0)
        right.sendto(_datagram(0), left.getsockname())
        first, _ = faulty.recvfrom(65536)
        second, _ = faulty.recvfrom(65536)
        assert first == second

    def test_plan_delay_defers_delivery(self, pair):
        import time

        left, right = pair
        faulty = _wrap(
            left,
            FaultRule(action="delay", kinds=("data",), direction="recv",
                      indices=(0,), delay_s=0.05),
        )
        faulty.settimeout(2.0)
        right.sendto(_datagram(0), left.getsockname())
        start = time.monotonic()
        datagram, _ = faulty.recvfrom(65536)
        assert decode(datagram).seq == 0
        assert time.monotonic() - start >= 0.04

    def test_reorder_hold_flushed_at_deadline(self, pair):
        left, right = pair
        faulty = _wrap(
            left,
            FaultRule(action="reorder", kinds=("data",), direction="recv",
                      indices=(0,), depth=10),
        )
        faulty.settimeout(0.2)
        right.sendto(_datagram(0), left.getsockname())
        # Nothing overtakes it, but the deadline flush returns it anyway:
        # bounded plans must never turn into data loss.
        datagram, _ = faulty.recvfrom(65536)
        assert decode(datagram).seq == 0

    def test_timeout_still_raised_when_nothing_held(self, pair):
        left, _ = pair
        faulty = _wrap(
            left, FaultRule(action="drop", kinds=("data",), direction="recv")
        )
        faulty.settimeout(0.05)
        with pytest.raises(socket.timeout):
            faulty.recvfrom(65536)


class TestLossySocketCompat:
    def test_lossy_socket_is_a_faulty_socket(self):
        raw = _udp_socket()
        try:
            lossy = LossySocket(raw, DeterministicDrops([0]))
            assert isinstance(lossy, FaultySocket)
        finally:
            raw.close()

    def test_context_manager_closes(self):
        raw = _udp_socket()
        with FaultySocket(raw) as faulty:
            assert faulty.getsockname()[0] == "127.0.0.1"
        with pytest.raises(OSError):
            raw.getsockname()
