"""Conformance harness: fast DES sweep + spot-checked UDP cells.

The full 108-cell matrix lives in ``benchmarks/`` (and the committed
golden ledger); here we keep the DES side exhaustive over a plan subset
and only spot-check the slow wall-clock substrate.
"""

import pytest

from repro.faults.conformance import (
    COMBOS,
    SUBSTRATES,
    build_specs,
    render_report,
    run_matrix,
)
from repro.faults.plans import BUILTIN_PLANS, builtin_plan, builtin_plan_names

FAST_PLANS = [
    builtin_plan("clean"),
    builtin_plan("drop-data-head"),
    builtin_plan("dup-burst"),
    builtin_plan("random-mayhem"),
]


class TestBuiltinPlans:
    def test_catalogue_is_stable(self):
        names = builtin_plan_names()
        assert names == builtin_plan_names()  # stable catalogue order
        assert "clean" in names
        assert len(names) >= 6  # the acceptance floor for the matrix

    def test_all_builtin_plans_bounded(self):
        for name in builtin_plan_names():
            plan = BUILTIN_PLANS[name]
            assert plan.is_bounded, f"builtin plan {name} must be bounded"

    def test_unknown_plan_rejected(self):
        with pytest.raises(KeyError):
            builtin_plan("no-such-plan")

    def test_plans_round_trip_through_json(self):
        from repro.faults.plan import FaultPlan

        for name in builtin_plan_names():
            plan = BUILTIN_PLANS[name]
            assert FaultPlan.from_json(plan.to_json()) == plan


class TestBuildSpecs:
    def test_canonical_order_and_coverage(self):
        specs = build_specs(plans=FAST_PLANS, substrates=("des",))
        assert len(specs) == len(COMBOS) * len(FAST_PLANS)
        protocols = {spec[1] for spec in specs}
        assert protocols == {"stop_and_wait", "sliding_window", "blast"}
        strategies = {spec[2] for spec in specs if spec[1] == "blast"}
        assert strategies == {"full_no_nak", "full_nak", "gobackn", "selective"}

    def test_unknown_substrate_rejected(self):
        with pytest.raises(ValueError, match="substrate"):
            build_specs(substrates=("carrier-pigeon",))

    def test_default_covers_both_substrates(self):
        specs = build_specs()
        assert {spec[0] for spec in specs} == set(SUBSTRATES)
        assert len(specs) == len(COMBOS) * len(BUILTIN_PLANS) * len(SUBSTRATES)


class TestDesMatrix:
    def test_every_cell_passes(self):
        result = run_matrix(plans=FAST_PLANS, substrates=("des",))
        assert len(result.cells) == len(COMBOS) * len(FAST_PLANS)
        assert result.all_passed, result.failures

    def test_report_is_deterministic(self):
        first = run_matrix(plans=FAST_PLANS, substrates=("des",))
        second = run_matrix(plans=FAST_PLANS, substrates=("des",))
        assert first.report == second.report
        assert first.cells == second.cells

    def test_report_format(self):
        result = run_matrix(plans=FAST_PLANS[:1], substrates=("des",))
        lines = result.report.splitlines()
        assert lines[0].startswith("# fault-injection conformance matrix")
        assert lines[-1] == f"# cells={len(result.cells)} failures=0"
        for cell_line in lines[3:-1]:
            fields = cell_line.split()
            assert fields[0] == "des"
            assert fields[4] == "PASS"

    def test_failures_surface_in_report(self):
        # Render a hand-built failing cell: the report must say FAIL.
        from repro.faults.conformance import CellResult

        cell = CellResult(
            substrate="des", protocol="blast", strategy="gobackn",
            plan="clean", ok=False, intact=False, terminated=True,
            within_bound=True, frames=1, rounds=1, bound=10,
            error="synthetic",
        )
        report = render_report([cell], seed=0, size_bytes=1024)
        assert "FAIL" in report
        assert report.rstrip().endswith("failures=1")


@pytest.mark.slow
class TestUdpSpotChecks:
    """A sparse sample of the wall-clock substrate (full grid in benchmarks)."""

    @pytest.mark.parametrize(
        "protocol,strategy,plan_name",
        [
            ("stop_and_wait", None, "drop-data-head"),
            ("blast", "selective", "reorder-window"),
            ("blast", "full_nak", "dup-burst"),
        ],
    )
    def test_cell_passes(self, protocol, strategy, plan_name):
        from repro.faults.conformance import _run_cell_spec

        plan = builtin_plan(plan_name)
        row = _run_cell_spec(
            ("udp", protocol, strategy, plan.to_json(), 7, 4 * 1024 + 17)
        )
        assert row["ok"], row["error"]
        assert row["intact"]
        assert row["terminated"]
        assert row["within_bound"]
