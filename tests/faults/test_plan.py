"""Unit tests for the fault-plan DSL and its interpreter."""

import math

import pytest

from repro.faults.plan import (
    FaultDecision,
    FaultPlan,
    FaultRule,
    PlanExecutor,
    apply_to_sequence,
    frame_stream_key,
    validate_bounded,
)


class TestFaultRuleValidation:
    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="action"):
            FaultRule(action="explode")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            FaultRule(action="drop", kinds=("datagram",))

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            FaultRule(action="drop", direction="sideways")

    def test_empty_index_window_rejected(self):
        with pytest.raises(ValueError, match="window"):
            FaultRule(action="drop", first=5, last=2)

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule(action="drop", probability=0.0)
        with pytest.raises(ValueError, match="probability"):
            FaultRule(action="drop", probability=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError, match="delay_s"):
            FaultRule(action="delay", delay_s=-0.1)

    def test_zero_corrupt_mask_rejected(self):
        with pytest.raises(ValueError, match="corrupt_mask"):
            FaultRule(action="corrupt", corrupt_mask=0)

    def test_indices_deduplicated_and_sorted(self):
        rule = FaultRule(action="drop", indices=(5, 1, 5, 3))
        assert rule.indices == (1, 3, 5)


class TestBudgets:
    def test_times_bounds_a_rule(self):
        assert FaultRule(action="drop", times=4).max_triggers() == 4

    def test_index_window_bounds_a_rule(self):
        assert FaultRule(action="drop", first=2, last=6).max_triggers() == 5

    def test_periodic_window_divides(self):
        rule = FaultRule(action="drop", first=0, last=9, every=3)
        assert rule.max_triggers() == 4  # indices 0, 3, 6, 9

    def test_unbounded_rule_is_infinite(self):
        assert FaultRule(action="drop", every=2).max_triggers() == math.inf

    def test_plan_budget_sums_rules(self):
        plan = FaultPlan(
            name="two",
            rules=(
                FaultRule(action="drop", times=2),
                FaultRule(action="duplicate", indices=(0, 4)),
            ),
        )
        assert plan.fault_budget() == 4
        assert plan.is_bounded

    def test_validate_bounded_rejects_open_plans(self):
        open_plan = FaultPlan(
            name="forever", rules=(FaultRule(action="drop", every=2),)
        )
        assert not open_plan.is_bounded
        with pytest.raises(ValueError, match="unbounded"):
            validate_bounded([open_plan])


class TestSerialisation:
    def test_round_trip_preserves_equality(self):
        plan = FaultPlan(
            name="rt",
            seed=11,
            description="round trip",
            rules=(
                FaultRule(action="drop", kinds=("data",), first=0, last=2),
                FaultRule(
                    action="corrupt", kinds=("reply",), direction="recv",
                    indices=(1, 4), corrupt_mask=0x5A, silent=True,
                ),
                FaultRule(action="delay", delay_s=0.25, window_s=(1.0, 3.0)),
                FaultRule(action="duplicate", probability=0.5, times=3, count=2),
            ),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_json_is_stable(self):
        plan = FaultPlan(
            name="stable", rules=(FaultRule(action="drop", times=1),)
        )
        assert plan.to_json() == plan.to_json()

    def test_defaults_omitted_from_dict(self):
        rule = FaultRule(action="drop")
        assert rule.to_dict() == {"action": "drop"}


class TestPlanExecutor:
    def test_index_window_selects_stream_positions(self):
        plan = FaultPlan(
            name="w",
            rules=(FaultRule(action="drop", kinds=("data",), first=1, last=2),),
        )
        ex = PlanExecutor(plan)
        hits = [ex.decide("data", "send").drop for _ in range(5)]
        assert hits == [False, True, True, False, False]

    def test_kind_filter_keeps_separate_streams(self):
        plan = FaultPlan(
            name="k", rules=(FaultRule(action="drop", kinds=("data",), indices=(0,)),)
        )
        ex = PlanExecutor(plan)
        # An ack does not advance the data-rule stream counter.
        assert not ex.decide("ack", "recv").drop
        assert ex.decide("data", "send").drop

    def test_reply_alias_matches_ack_and_nak(self):
        plan = FaultPlan(
            name="r",
            rules=(FaultRule(action="drop", kinds=("reply",), first=0, last=1),),
        )
        ex = PlanExecutor(plan)
        assert ex.decide("ack", "recv").drop
        assert ex.decide("nak", "recv").drop
        assert not ex.decide("data", "send").drop

    def test_direction_filter(self):
        plan = FaultPlan(
            name="d", rules=(FaultRule(action="drop", direction="recv"),)
        )
        ex = PlanExecutor(plan)
        assert not ex.decide("data", "send").drop
        assert ex.decide("ack", "recv").drop

    def test_seq_filter(self):
        plan = FaultPlan(
            name="s", rules=(FaultRule(action="drop", seqs=(3,)),)
        )
        ex = PlanExecutor(plan)
        assert not ex.decide("data", "send", seq=2).drop
        assert ex.decide("data", "send", seq=3).drop

    def test_times_budget_caps_firings(self):
        plan = FaultPlan(
            name="t", rules=(FaultRule(action="drop", times=2),)
        )
        ex = PlanExecutor(plan)
        fired = [ex.decide("data", "send").drop for _ in range(5)]
        assert fired == [True, True, False, False, False]
        assert ex.faults_fired == 2

    def test_time_window_needs_clock(self):
        plan = FaultPlan(
            name="tw",
            rules=(FaultRule(action="drop", window_s=(1.0, 2.0)),),
        )
        assert not PlanExecutor(plan).decide("data", "send").drop
        assert not PlanExecutor(plan).decide("data", "send", now=0.5).drop
        assert PlanExecutor(plan).decide("data", "send", now=1.5).drop

    def test_combined_actions_merge(self):
        plan = FaultPlan(
            name="m",
            rules=(
                FaultRule(action="duplicate", count=2, times=1),
                FaultRule(action="delay", delay_s=0.1, times=1),
            ),
        )
        decision = PlanExecutor(plan).decide("data", "send")
        assert decision.duplicates == 2
        assert decision.delay_s == 0.1
        assert not decision.drop

    def test_stochastic_rule_replays_for_equal_seed(self):
        plan = FaultPlan(
            name="p",
            rules=(FaultRule(action="drop", probability=0.5, times=50),),
        )
        runs = []
        for _ in range(2):
            ex = PlanExecutor(plan, seed=123)
            runs.append([ex.decide("data", "send").drop for _ in range(40)])
        assert runs[0] == runs[1]
        assert any(runs[0]) and not all(runs[0])

    def test_different_seeds_differ(self):
        plan = FaultPlan(
            name="p2",
            rules=(FaultRule(action="drop", probability=0.5, times=100),),
        )
        a = [PlanExecutor(plan, seed=1).decide("data", "send").drop for _ in range(1)]
        runs = {}
        for seed in (1, 2):
            ex = PlanExecutor(plan, seed=seed)
            runs[seed] = [ex.decide("data", "send").drop for _ in range(60)]
        assert runs[1] != runs[2]
        assert a  # first draw recorded without error

    def test_reset_rewinds_everything(self):
        plan = FaultPlan(
            name="rst", rules=(FaultRule(action="drop", indices=(0,)),)
        )
        ex = PlanExecutor(plan)
        assert ex.decide("data", "send").drop
        assert not ex.decide("data", "send").drop
        ex.reset()
        assert ex.decide("data", "send").drop

    def test_no_fault_decision_is_inert(self):
        decision = FaultDecision()
        assert not decision.any


class TestApplyToSequence:
    def test_drop_removes_items(self):
        plan = FaultPlan(
            name="d", rules=(FaultRule(action="drop", indices=(0, 2)),)
        )
        assert apply_to_sequence(plan, [10, 11, 12, 13]) == [11, 13]

    def test_duplicate_repeats_items(self):
        plan = FaultPlan(
            name="dup", rules=(FaultRule(action="duplicate", indices=(1,)),)
        )
        assert apply_to_sequence(plan, [0, 1, 2]) == [0, 1, 1, 2]

    def test_reorder_pushes_item_back(self):
        plan = FaultPlan(
            name="ro",
            rules=(FaultRule(action="reorder", indices=(0,), depth=2),),
        )
        assert apply_to_sequence(plan, [0, 1, 2, 3]) == [1, 2, 0, 3]

    def test_delay_moves_item_later(self):
        plan = FaultPlan(
            name="dl",
            rules=(FaultRule(action="delay", indices=(0,), delay_s=2.5),),
        )
        assert apply_to_sequence(plan, [0, 1, 2, 3], spacing_s=1.0) == [1, 2, 0, 3]

    def test_detectable_corruption_is_removal(self):
        plan = FaultPlan(
            name="c", rules=(FaultRule(action="corrupt", indices=(1,)),)
        )
        assert apply_to_sequence(plan, [0, 1, 2]) == [0, 2]

    def test_seq_matching_on_int_items(self):
        plan = FaultPlan(
            name="sq", rules=(FaultRule(action="drop", seqs=(7,)),)
        )
        assert apply_to_sequence(plan, [5, 7, 9]) == [5, 9]

    def test_deterministic_for_equal_seeds(self):
        plan = FaultPlan(
            name="det",
            rules=(
                FaultRule(action="drop", probability=0.3, times=10),
                FaultRule(action="duplicate", probability=0.3, times=10),
            ),
        )
        items = list(range(30))
        assert apply_to_sequence(plan, items, seed=5) == apply_to_sequence(
            plan, items, seed=5
        )


class TestFrameStreamKey:
    def test_classifies_core_frames(self):
        from repro.core.frames import AckFrame, ControlFrame, DataFrame, NakFrame

        data = DataFrame(transfer_id=1, seq=3, total=8, payload=b"x")
        ack = AckFrame(transfer_id=1, seq=3)
        nak = NakFrame(transfer_id=1, first_missing=2, missing=(2, 5), total=8)
        ctrl = ControlFrame(transfer_id=0, request_id=9, body=b"{}")
        assert frame_stream_key(data) == ("data", "send", 3)
        assert frame_stream_key(ack) == ("ack", "recv", 3)
        assert frame_stream_key(nak) == ("nak", "recv", 2)
        assert frame_stream_key(ctrl) == ("control", "send", 9)

    def test_unknown_objects_are_kind_agnostic(self):
        assert frame_stream_key(object()) == (None, "both", None)
