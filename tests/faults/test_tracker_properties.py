"""Seeded property tests: tracker and strategies under adversarial orders.

Fault plans double as arrival-order generators: ``apply_to_sequence``
turns a randomly built (but bounded) plan into a drop/duplicate/reorder
pattern over the sequence numbers of one transfer round.  Feeding those
arrival streams to :class:`~repro.core.tracker.ReceiverTracker` and to
all four retransmission strategies exercises the invariants the
protocols rely on, across hundreds of seeds, using only the stdlib RNG.
"""

import random

import pytest

from repro.core.frames import NakFrame
from repro.core.strategies import STRATEGY_REGISTRY, get_strategy
from repro.core.tracker import ReceiverTracker
from repro.faults.plan import FaultPlan, FaultRule, apply_to_sequence

SEEDS = range(40)


def _random_plan(rng: random.Random, total: int) -> FaultPlan:
    """A small bounded plan with a random mix of rules."""
    rules = []
    n_rules = rng.randint(1, 4)
    for _ in range(n_rules):
        action = rng.choice(["drop", "duplicate", "reorder", "delay"])
        style = rng.choice(["indices", "window", "stochastic"])
        kwargs = {}
        if style == "indices":
            count = rng.randint(1, min(4, total))
            kwargs["indices"] = tuple(
                rng.sample(range(total), count)
            )
        elif style == "window":
            first = rng.randint(0, total - 1)
            kwargs["first"] = first
            kwargs["last"] = rng.randint(first, total - 1)
        else:
            kwargs["probability"] = rng.uniform(0.1, 0.9)
            kwargs["times"] = rng.randint(1, total)
        if action == "duplicate":
            kwargs["count"] = rng.randint(1, 2)
        elif action == "reorder":
            kwargs["depth"] = rng.randint(1, 3)
        elif action == "delay":
            kwargs["delay_s"] = rng.uniform(0.5, 3.0)
        rules.append(FaultRule(action=action, **kwargs))
    plan = FaultPlan(name="prop", rules=tuple(rules), seed=rng.randint(0, 2**31))
    assert plan.is_bounded
    return plan


def _arrivals(seed: int, total: int):
    """Adversarial arrival order of sequence numbers for one round."""
    rng = random.Random(seed)
    plan = _random_plan(rng, total)
    return apply_to_sequence(plan, list(range(total)), seed=seed)


class TestTrackerProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_state_matches_reference_set(self, seed):
        total = random.Random(seed ^ 0xA5).randint(2, 24)
        tracker = ReceiverTracker(total)
        seen = set()
        duplicates = 0
        for seq in _arrivals(seed, total):
            was_new = tracker.add(seq)
            assert was_new == (seq not in seen)
            if not was_new:
                duplicates += 1
            seen.add(seq)
            # Tracker state must mirror the reference set exactly.
            assert tracker.received_count == len(seen)
            assert tracker.duplicates == duplicates
            missing = sorted(set(range(total)) - seen)
            assert list(tracker.missing()) == missing
            assert tracker.is_complete == (not missing)
            assert tracker.first_missing == (missing[0] if missing else None)
            for probe in range(total):
                assert tracker.has(probe) == (probe in seen)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_report_is_consistent_snapshot(self, seed):
        total = random.Random(seed ^ 0x3C).randint(2, 24)
        tracker = ReceiverTracker(total)
        for seq in _arrivals(seed, total):
            tracker.add(seq)
            report = tracker.report()
            assert report.total == total
            assert report.complete == tracker.is_complete
            assert report.missing == tracker.missing()
            assert report.first_missing == tracker.first_missing
            if not report.complete:
                # Every incomplete report must be expressible as a NAK.
                nak = NakFrame(
                    transfer_id=1,
                    first_missing=report.first_missing,
                    missing=report.missing,
                    total=report.total,
                )
                assert nak.first_missing == report.missing[0]


class TestStrategyProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("name", sorted(STRATEGY_REGISTRY))
    def test_working_set_invariants(self, name, seed):
        total = random.Random(seed ^ 0x77).randint(2, 24)
        strategy = get_strategy(name)
        tracker = ReceiverTracker(total)

        # Timer-detected failure: no report available.
        assert strategy.next_working_set(total, None) == list(range(total))

        for seq in _arrivals(seed, total):
            tracker.add(seq)
            report = tracker.report()
            working = strategy.next_working_set(total, report)
            # Invariants every strategy must satisfy:
            assert working == sorted(working)
            assert len(working) == len(set(working))
            assert all(0 <= seq_ < total for seq_ in working)
            # The working set always covers what is still missing.
            assert set(report.missing) <= set(working)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_strategy_specific_shapes(self, seed):
        total = random.Random(seed ^ 0x1F).randint(2, 24)
        tracker = ReceiverTracker(total)
        full = get_strategy("full_no_nak")
        full_nak = get_strategy("full_nak")
        gobackn = get_strategy("gobackn")
        selective = get_strategy("selective")
        for seq in _arrivals(seed, total):
            tracker.add(seq)
            report = tracker.report()
            everything = list(range(total))
            assert full.next_working_set(total, report) == everything
            assert full_nak.next_working_set(total, report) == everything
            if report.complete:
                assert gobackn.next_working_set(total, report) == everything
                assert selective.next_working_set(total, report) == everything
            else:
                assert gobackn.next_working_set(total, report) == list(
                    range(report.first_missing, total)
                )
                assert selective.next_working_set(total, report) == list(
                    report.missing
                )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_selective_never_resends_more_than_gobackn(self, seed):
        total = random.Random(seed ^ 0x42).randint(2, 24)
        tracker = ReceiverTracker(total)
        gobackn = get_strategy("gobackn")
        selective = get_strategy("selective")
        for seq in _arrivals(seed, total):
            tracker.add(seq)
            report = tracker.report()
            n_selective = len(selective.next_working_set(total, report))
            n_gobackn = len(gobackn.next_working_set(total, report))
            assert n_selective <= n_gobackn


class TestRepeatedRounds:
    """Drive tracker + strategy to completion under repeated faulty rounds."""

    @pytest.mark.parametrize("name", sorted(STRATEGY_REGISTRY))
    @pytest.mark.parametrize("seed", range(10))
    def test_convergence_under_bounded_faults(self, name, seed):
        total = random.Random(seed ^ 0x99).randint(2, 16)
        strategy = get_strategy(name)
        tracker = ReceiverTracker(total)
        working = list(range(total))
        rounds = 0
        round_seed = seed
        while not tracker.is_complete:
            rounds += 1
            assert rounds <= 64, "strategy failed to converge"
            rng = random.Random(round_seed)
            plan = _random_plan(rng, max(len(working), 2))
            for seq in apply_to_sequence(plan, working, seed=round_seed):
                tracker.add(seq)
            working = strategy.next_working_set(total, tracker.report())
            round_seed += 1
        assert tracker.missing() == ()
        assert tracker.report().complete
