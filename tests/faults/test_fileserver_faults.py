"""UDP file service under a duplication + reorder fault plan (satellite:
request dedup must hold and transferred bodies stay byte-identical)."""

import threading
import time

import pytest

from repro.faults.plan import FaultPlan, FaultRule
from repro.udpnet import UdpFileClient, UdpFileServer

CONTENT = bytes(i % 253 for i in range(24 * 1024))  # 24 KB, aperiodic

#: Every control request leaves the client twice; early data frames of
#: outgoing blasts are duplicated and shuffled.
DUP_REORDER_PLAN = FaultPlan(
    name="dup-reorder-fileservice",
    seed=17,
    description="duplicate every control request; duplicate and reorder "
    "early blast data frames",
    rules=(
        FaultRule(action="duplicate", kinds=("control",), direction="send",
                  first=0, last=7, count=1),
        FaultRule(action="duplicate", kinds=("data",), first=0, last=3,
                  count=1),
        FaultRule(action="reorder", kinds=("data",), indices=(1, 4), depth=1),
    ),
)


def wait_for_file(server, name, deadline_s=5.0):
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if name in server.files:
            return server.files[name]
        time.sleep(0.01)
    raise AssertionError(f"{name} never appeared on the server")


@pytest.fixture()
def faulty_service():
    server = UdpFileServer(files={"data.bin": CONTENT})
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = UdpFileClient(
        server.address, fault_plan=DUP_REORDER_PLAN, fault_seed=17
    )
    yield server, client
    server.stop()
    thread.join(timeout=10)
    assert not thread.is_alive()
    client.close()
    server.close()


class TestFileServiceUnderFaults:
    def test_read_is_byte_identical(self, faulty_service):
        server, client = faulty_service
        assert client.read_file("data.bin") == CONTENT
        # One unique request despite the duplicated control frame.
        assert server.requests_served == 1

    def test_write_round_trip_with_dedup(self, faulty_service):
        server, client = faulty_service
        payload = bytes(reversed(CONTENT))
        assert client.write_file("up.bin", payload) == len(payload)
        assert wait_for_file(server, "up.bin") == payload
        # Duplicated requests were replayed from cache, not re-executed:
        # the served count tracks *unique* requests only.
        assert server.requests_served == 1
        assert client.read_file("up.bin") == payload
        assert server.requests_served == 2
        # The store holds exactly the two files we expect — a double-served
        # write would have clobbered or re-created entries.
        assert sorted(server.files) == ["data.bin", "up.bin"]

    def test_duplicates_actually_injected(self, faulty_service):
        server, client = faulty_service
        assert client.stat("data.bin") == len(CONTENT)
        assert client.sock.faults_injected["duplicate"] >= 1
        assert server.requests_served == 1
