"""End-to-end tests for the UDP file service."""

import threading
import time

import pytest

from repro.core import ControlFrame, decode, encode
from repro.simnet import BernoulliErrors
from repro.udpnet import FileServiceError, UdpFileClient, UdpFileServer

CONTENT = bytes(range(256)) * 64  # 16 KB


def wait_for_file(server, name, deadline_s=5.0):
    """The server installs an upload only after its post-ack linger; a
    client's write returns at the ack, so tests poll briefly."""
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        if name in server.files:
            return server.files[name]
        time.sleep(0.01)
    raise AssertionError(f"{name} never appeared on the server")


@pytest.fixture()
def service():
    server = UdpFileServer(files={"data.bin": CONTENT})
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = UdpFileClient(server.address)
    yield server, client
    server.stop()
    thread.join(timeout=10)
    assert not thread.is_alive()
    client.close()
    server.close()


class TestControlFrameWire:
    def test_roundtrip(self):
        frame = ControlFrame(0, request_id=7, body=b'{"op":"stat"}')
        decoded = decode(encode(frame))
        assert isinstance(decoded, ControlFrame)
        assert decoded.request_id == 7
        assert decoded.body == b'{"op":"stat"}'

    def test_validation(self):
        with pytest.raises(ValueError):
            ControlFrame(0, request_id=-1, body=b"")


class TestFileService:
    def test_list_and_stat(self, service):
        _, client = service
        assert client.list_files() == ["data.bin"]
        assert client.stat("data.bin") == len(CONTENT)

    def test_stat_missing_file(self, service):
        _, client = service
        with pytest.raises(FileServiceError, match="no such file"):
            client.stat("ghost.bin")

    def test_read(self, service):
        _, client = service
        assert client.read_file("data.bin") == CONTENT

    def test_read_missing_file(self, service):
        _, client = service
        with pytest.raises(FileServiceError, match="no such file"):
            client.read_file("ghost.bin")

    def test_write_then_read(self, service):
        server, client = service
        payload = b"fresh content" * 700
        assert client.write_file("new.bin", payload) == len(payload)
        assert wait_for_file(server, "new.bin") == payload
        assert client.read_file("new.bin") == payload

    def test_sequential_requests(self, service):
        server, client = service
        for index in range(5):
            name = f"f{index}.bin"
            client.write_file(name, bytes([index]) * 2048)
        assert len(client.list_files()) == 6
        for index in range(5):
            assert client.read_file(f"f{index}.bin") == bytes([index]) * 2048

    def test_large_file(self, service):
        _, client = service
        big = bytes(i % 251 for i in range(256 * 1024))
        client.write_file("big.bin", big)
        assert client.read_file("big.bin") == big

    def test_client_side_loss_recovered(self):
        """Loss injected at the client's socket: lost requests retry, lost
        blast frames retransmit — everything still completes intact."""
        server = UdpFileServer(files={"data.bin": CONTENT})
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = UdpFileClient(
            server.address, error_model=BernoulliErrors(0.05, seed=3)
        )
        try:
            assert client.read_file("data.bin") == CONTENT
            payload = b"lossy write" * 900
            client.write_file("up.bin", payload)
            assert wait_for_file(server, "up.bin") == payload
        finally:
            server.stop()
            thread.join(timeout=10)
            client.close()
            server.close()

    def test_concurrent_request_rejected_with_busy_frame(self, service):
        """A second client's request mid-bulk gets an explicit ``busy``
        error frame (regression: it used to be silently swallowed by the
        blast loops, hanging the client until its retries ran out)."""
        server, client_a = service
        # No busy retries: the first rejection surfaces immediately.
        client_b = UdpFileClient(server.address, max_retries=1,
                                 request_timeout_s=1.0)
        errors = {}

        def slow_write():
            # Big enough that the server's blast-receive phase is still
            # in flight when client B's request lands.
            try:
                client_a.write_file("slow.bin", bytes(512) * 1024)
            except FileServiceError as exc:  # pragma: no cover - diagnostic
                errors["a"] = exc

        thread = threading.Thread(target=slow_write, daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 5.0
            saw_busy = False
            while time.monotonic() < deadline and not saw_busy:
                try:
                    client_b.stat("data.bin")
                except FileServiceError as exc:
                    assert "busy" in str(exc)
                    saw_busy = True
            assert saw_busy, "server never rejected the concurrent request"
            assert server.requests_rejected_busy >= 1
        finally:
            thread.join(timeout=10)
            assert not thread.is_alive()
            client_b.close()
        assert "a" not in errors
        assert wait_for_file(server, "slow.bin") == bytes(512) * 1024

    def test_busy_rejection_is_retryable(self, service):
        """A patient client rides out the busy window and then succeeds."""
        server, client_a = service
        client_b = UdpFileClient(server.address)
        thread = threading.Thread(
            target=client_a.write_file, args=("w.bin", bytes(256) * 1024),
            daemon=True,
        )
        thread.start()
        try:
            assert client_b.stat("data.bin") == len(CONTENT)
        finally:
            thread.join(timeout=10)
            assert not thread.is_alive()
            client_b.close()
        assert wait_for_file(server, "w.bin") == bytes(256) * 1024

    def test_two_clients_sequential(self, service):
        server, client_a = service
        client_b = UdpFileClient(server.address)
        try:
            client_a.write_file("a.bin", b"A" * 4096)
            client_b.write_file("b.bin", b"B" * 4096)
            assert client_b.read_file("a.bin") == b"A" * 4096
            assert client_a.read_file("b.bin") == b"B" * 4096
        finally:
            client_b.close()
