"""End-to-end tests of the UDP transport over loopback.

Each test runs the receiver in a thread and the sender in the test
thread.  Timeouts are generous to keep CI machines happy; correctness
(intact delivery under loss) is the assertion, not speed.
"""

import threading

import pytest

from repro.simnet import BernoulliErrors, DeterministicDrops
from repro.udpnet import (
    BlastReceiver,
    BlastSender,
    PerPacketAckReceiver,
    SawSender,
    SlidingWindowSender,
)

DATA = bytes(range(256)) * 32  # 8 KB -> 8 packets


def run_pair(receiver, serve_kwargs, send_fn):
    """Drive receiver.serve_one in a thread while send_fn runs here."""
    box = {}

    def serve():
        box["received"] = receiver.serve_one(**serve_kwargs)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    box["sent"] = send_fn()
    thread.join(timeout=30)
    assert not thread.is_alive(), "receiver thread hung"
    return box["sent"], box["received"]


class TestStopAndWaitUdp:
    def test_lossless_transfer(self):
        with PerPacketAckReceiver() as receiver, SawSender() as sender:
            sent, received = run_pair(
                receiver, {}, lambda: sender.send(DATA, receiver.address)
            )
        assert sent.ok
        assert received.ok
        assert received.data == DATA
        assert sent.data_frames_sent == 8

    def test_transfer_with_injected_loss(self):
        with PerPacketAckReceiver() as receiver, SawSender(
            error_model=BernoulliErrors(0.2, seed=31)
        ) as sender:
            sent, received = run_pair(
                receiver, {}, lambda: sender.send(DATA, receiver.address)
            )
        assert sent.ok
        assert received.data == DATA
        assert sent.retransmissions > 0


class TestSlidingWindowUdp:
    def test_lossless_transfer(self):
        with PerPacketAckReceiver() as receiver, SlidingWindowSender() as sender:
            sent, received = run_pair(
                receiver, {}, lambda: sender.send(DATA, receiver.address)
            )
        assert sent.ok
        assert received.data == DATA
        assert sent.rounds == 1

    def test_selective_repeat_under_loss(self):
        with PerPacketAckReceiver() as receiver, SlidingWindowSender(
            error_model=BernoulliErrors(0.25, seed=32)
        ) as sender:
            sent, received = run_pair(
                receiver, {}, lambda: sender.send(DATA, receiver.address)
            )
        assert sent.ok
        assert received.data == DATA
        assert sent.rounds > 1


class TestBlastUdp:
    @pytest.mark.parametrize("strategy", ["full_nak", "gobackn", "selective"])
    def test_lossless_transfer(self, strategy):
        with BlastReceiver() as receiver, BlastSender() as sender:
            sent, received = run_pair(
                receiver,
                {},
                lambda: sender.send(DATA, receiver.address, strategy=strategy),
            )
        assert sent.ok
        assert received.data == DATA
        assert sent.rounds == 1
        assert sent.data_frames_sent == 8
        assert received.reply_frames_sent == 1  # a single ack for the blast

    def test_full_no_nak_with_silent_receiver(self):
        with BlastReceiver() as receiver, BlastSender(
            error_model=DeterministicDrops([2])
        ) as sender:
            sent, received = run_pair(
                receiver,
                {"nak": False},
                lambda: sender.send(
                    DATA, receiver.address, strategy="full_no_nak", timeout_s=0.1
                ),
            )
        assert sent.ok
        assert received.data == DATA
        assert sent.timeouts >= 1        # silence forced the timer
        assert sent.data_frames_sent >= 16  # full retransmission

    def test_gobackn_resends_tail_only(self):
        with BlastReceiver() as receiver, BlastSender(
            error_model=DeterministicDrops([5])  # lose data packet seq 5
        ) as sender:
            sent, received = run_pair(
                receiver,
                {},
                lambda: sender.send(DATA, receiver.address, strategy="gobackn"),
            )
        assert sent.ok
        assert received.data == DATA
        assert sent.rounds == 2
        assert sent.data_frames_sent == 8 + 3  # seqs 5, 6, 7

    def test_selective_resends_exactly_missing(self):
        with BlastReceiver() as receiver, BlastSender(
            error_model=DeterministicDrops([1, 5])
        ) as sender:
            sent, received = run_pair(
                receiver,
                {},
                lambda: sender.send(DATA, receiver.address, strategy="selective"),
            )
        assert sent.ok
        assert received.data == DATA
        assert sent.data_frames_sent == 8 + 2

    def test_heavy_loss_still_delivers(self):
        with BlastReceiver() as receiver, BlastSender(
            error_model=BernoulliErrors(0.25, seed=33)
        ) as sender:
            sent, received = run_pair(
                receiver,
                {},
                lambda: sender.send(DATA, receiver.address, strategy="selective"),
            )
        assert sent.ok
        assert received.data == DATA

    def test_large_transfer(self):
        big = bytes(256) * 1024  # 256 KB -> 256 packets
        with BlastReceiver() as receiver, BlastSender() as sender:
            sent, received = run_pair(
                receiver,
                {},
                lambda: sender.send(big, receiver.address, strategy="gobackn"),
            )
        assert sent.ok
        assert received.data == big
        assert received.n_packets == 256


class TestOutcomeAccounting:
    def test_throughput_positive(self):
        with BlastReceiver() as receiver, BlastSender() as sender:
            sent, _ = run_pair(
                receiver, {}, lambda: sender.send(DATA, receiver.address)
            )
        assert sent.throughput_bps > 0

    def test_receiver_first_timeout(self):
        with BlastReceiver() as receiver:
            outcome = receiver.serve_one(first_timeout_s=0.05)
        assert not outcome.ok
        assert "timed out" in outcome.error

    def test_lossy_socket_counters(self):
        sender = SawSender(error_model=DeterministicDrops([0]))
        try:
            sender.sock.sendto(b"x", ("127.0.0.1", 9))  # dropped
            assert sender.sock.datagrams_dropped == 1
            assert sender.sock.loss_rate == 1.0
        finally:
            sender.close()
