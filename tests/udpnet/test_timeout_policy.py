"""TimeoutPolicy wiring through the UDP senders, with Karn regression.

The regression at stake: :class:`~repro.core.timers.AdaptiveTimeout`
must never take an RTT sample from an ambiguous exchange — one whose
round involved a retransmission or a consumed duplicate/stale
acknowledgement — or a single delay spike poisons the estimator for the
rest of the transfer (Karn's rule).  Fault plans make the ambiguous
exchanges deterministic.
"""

import threading

from repro.core.timers import AdaptiveTimeout, FixedTimeout
from repro.faults.plan import FaultPlan, FaultRule
from repro.udpnet import (
    BlastReceiver,
    BlastSender,
    PerPacketAckReceiver,
    SawSender,
    SlidingWindowSender,
)

DATA = bytes(range(256)) * 16  # 4 KB -> 4 packets


def run_pair(receiver, serve_kwargs, send_fn):
    box = {}

    def serve():
        box["received"] = receiver.serve_one(**serve_kwargs)

    thread = threading.Thread(target=serve, daemon=True)
    thread.start()
    box["sent"] = send_fn()
    thread.join(timeout=30)
    assert not thread.is_alive(), "receiver thread hung"
    return box["sent"], box["received"]


def _plan(*rules, name="t", seed=0):
    return FaultPlan(name=name, rules=tuple(rules), seed=seed)


class TestSawAdaptiveTimeout:
    def test_clean_run_samples_every_packet(self):
        policy = AdaptiveTimeout(initial_s=1.0)
        with PerPacketAckReceiver() as receiver, SawSender() as sender:
            sent, received = run_pair(
                receiver, {},
                lambda: sender.send(DATA, receiver.address,
                                    timeout_policy=policy),
            )
        assert sent.ok and received.data == DATA
        assert policy.samples == sent.n_packets
        assert policy.expirations == 0
        # The estimator converged from the terrible initial guess to
        # loopback-scale RTTs.
        assert policy.current() < 1.0
        assert policy.srtt < 0.05

    def test_karn_dropped_ack_round_not_sampled(self):
        """Packet 0's first ack is dropped: the retried exchange is
        ambiguous and must not be sampled; the timer must back off."""
        policy = AdaptiveTimeout(initial_s=0.05)
        plan = _plan(
            FaultRule(action="drop", kinds=("ack",), direction="recv",
                      indices=(0,))
        )
        with PerPacketAckReceiver() as receiver, SawSender(
            fault_plan=plan, fault_seed=1
        ) as sender:
            sent, received = run_pair(
                receiver, {},
                lambda: sender.send(DATA, receiver.address,
                                    timeout_policy=policy),
            )
        assert sent.ok and received.data == DATA
        assert policy.expirations >= 1  # the drop forced a timer expiry
        # Every packet except the ambiguous one contributed a sample.
        assert policy.samples == sent.n_packets - 1
        assert policy.srtt < 0.05

    def test_karn_duplicate_ack_cascade_not_sampled(self):
        """Packet 0's ack is duplicated.  The stale copy is consumed
        while waiting for packet 1's ack, forcing a resend of packet 1,
        whose own doubled acks cascade the staleness down the transfer:
        only packet 0's exchange stays Karn-clean."""
        policy = AdaptiveTimeout(initial_s=0.5)
        plan = _plan(
            FaultRule(action="duplicate", kinds=("ack",), direction="recv",
                      indices=(0,), count=1)
        )
        with PerPacketAckReceiver() as receiver, SawSender(
            fault_plan=plan, fault_seed=1
        ) as sender:
            sent, received = run_pair(
                receiver, {},
                lambda: sender.send(DATA, receiver.address,
                                    timeout_policy=policy),
            )
        assert sent.ok and received.data == DATA
        assert sent.retransmissions >= 1
        assert policy.samples == 1  # only the first exchange was clean
        assert policy.srtt < 0.05

    def test_fixed_policy_matches_legacy_default(self):
        with PerPacketAckReceiver() as receiver, SawSender() as sender:
            sent, received = run_pair(
                receiver, {},
                lambda: sender.send(DATA, receiver.address,
                                    timeout_policy=FixedTimeout(0.05)),
            )
        assert sent.ok and received.data == DATA
        assert sent.retransmissions == 0


class TestBlastAdaptiveTimeout:
    def test_clean_run_samples_first_round_only(self):
        policy = AdaptiveTimeout(initial_s=1.0)
        with BlastReceiver() as receiver, BlastSender() as sender:
            sent, received = run_pair(
                receiver, {"nak": True},
                lambda: sender.send(DATA, receiver.address,
                                    strategy="full_nak",
                                    timeout_policy=policy),
            )
        assert sent.ok and received.data == DATA
        assert policy.samples == 1
        assert policy.srtt < 0.2

    def test_karn_lost_first_reply_never_sampled(self):
        """Round 0's reply is dropped: the transfer completes via
        retransmission rounds, none of which are Karn-clean."""
        policy = AdaptiveTimeout(initial_s=0.1)
        plan = _plan(
            FaultRule(action="drop", kinds=("reply",), direction="recv",
                      indices=(0,))
        )
        with BlastReceiver() as receiver, BlastSender(
            fault_plan=plan, fault_seed=1
        ) as sender:
            sent, received = run_pair(
                receiver, {"nak": True, "linger_s": 0.5},
                lambda: sender.send(DATA, receiver.address,
                                    strategy="full_nak",
                                    timeout_policy=policy,
                                    timeout_s=0.1, max_rounds=60),
            )
        assert sent.ok and received.data == DATA
        assert policy.expirations >= 1
        assert policy.samples == 0  # no round was unambiguous
        assert policy.current() >= 0.1  # backoff never undone by a sample


class TestSlidingWindowAdaptiveTimeout:
    def test_clean_run_samples_first_round(self):
        policy = AdaptiveTimeout(initial_s=1.0)
        with PerPacketAckReceiver() as receiver, SlidingWindowSender() as sender:
            sent, received = run_pair(
                receiver, {},
                lambda: sender.send(DATA, receiver.address,
                                    timeout_policy=policy),
            )
        assert sent.ok and received.data == DATA
        assert policy.samples == 1
        assert policy.expirations == 0

    def test_lossy_first_round_not_sampled(self):
        policy = AdaptiveTimeout(initial_s=0.05)
        plan = _plan(
            FaultRule(action="drop", kinds=("data",), indices=(1,))
        )
        with PerPacketAckReceiver() as receiver, SlidingWindowSender(
            fault_plan=plan, fault_seed=1
        ) as sender:
            sent, received = run_pair(
                receiver, {},
                lambda: sender.send(DATA, receiver.address,
                                    timeout_policy=policy, max_rounds=60),
            )
        assert sent.ok and received.data == DATA
        assert sent.retransmissions >= 1
        assert policy.samples == 0  # round 0 was dirtied by the loss

    def test_karn_progress_round_does_not_back_off(self):
        """Regression (Karn gap): a round that expired *after delivering
        fresh acks* is making progress, not signalling congestion — the
        sliding driver used to back the adaptive timer off anyway, so a
        single lost data frame doubled the timeout for the rest of the
        transfer."""
        policy = AdaptiveTimeout(initial_s=0.05)
        plan = _plan(
            FaultRule(action="drop", kinds=("data",), indices=(1,))
        )
        with PerPacketAckReceiver() as receiver, SlidingWindowSender(
            fault_plan=plan, fault_seed=1
        ) as sender:
            sent, received = run_pair(
                receiver, {},
                lambda: sender.send(DATA, receiver.address,
                                    timeout_policy=policy, max_rounds=60),
            )
        assert sent.ok and received.data == DATA
        assert sent.timeouts >= 1       # the round still counts as a retry
        assert policy.expirations == 0  # ...but the timer never backs off

    def test_karn_silent_round_still_backs_off(self):
        """Companion: a round with no acks at all is genuine silence,
        so the exponential backoff must still fire."""
        policy = AdaptiveTimeout(initial_s=0.05)
        plan = _plan(
            FaultRule(action="drop", kinds=("ack",), direction="recv",
                      first=0, last=3)  # every round-0 ack (4 packets)
        )
        with PerPacketAckReceiver() as receiver, SlidingWindowSender(
            fault_plan=plan, fault_seed=1
        ) as sender:
            sent, received = run_pair(
                receiver, {},
                lambda: sender.send(DATA, receiver.address,
                                    timeout_policy=policy, max_rounds=60),
            )
        assert sent.ok and received.data == DATA
        assert policy.expirations >= 1
