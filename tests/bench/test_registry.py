"""Tests for the experiment registry and bulk regeneration."""

import pytest

from repro.bench import EXPERIMENTS, regenerate_all, render_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3",
            "figure1", "figure3", "figure4", "figure5", "figure6",
        }

    def test_render_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            render_experiment("table9")

    def test_render_table(self):
        text = render_experiment("table2")
        assert "3.91" in text

    def test_render_series_includes_plot(self):
        text = render_experiment("figure5")
        assert "p_n" in text
        assert "|" in text  # the ASCII plot frame

    def test_regenerate_all(self, tmp_path):
        written = regenerate_all(tmp_path / "out")
        assert set(written) == set(EXPERIMENTS)
        for path in written.values():
            assert path.exists()
            assert path.read_text().strip()


class TestCliRegen:
    def test_regen_command(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.parallel import CACHE_ENV_VAR

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "cache"))
        assert main(["regen", "--out", str(tmp_path / "r")]) == 0
        out = capsys.readouterr().out
        assert "8 artifacts regenerated" in out
        assert "cache:" in out
        assert (tmp_path / "r" / "figure6.txt").exists()

    def test_second_regen_hits_cache_and_reproduces_files(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main
        from repro.parallel import CACHE_ENV_VAR

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "cache"))
        assert main(["regen", "--out", str(tmp_path / "a")]) == 0
        first = capsys.readouterr().out
        assert main(["regen", "--out", str(tmp_path / "b")]) == 0
        second = capsys.readouterr().out
        assert "cache: 0 hits" in first
        # Every Monte Carlo point of the second pass is served from disk.
        hits = int(second.split("cache: ")[1].split(" hits")[0])
        assert hits > 0
        for name in ("figure5.txt", "figure6.txt", "table2.txt"):
            assert (tmp_path / "a" / name).read_bytes() == (
                tmp_path / "b" / name
            ).read_bytes()

    def test_no_cache_flag(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main
        from repro.parallel import CACHE_ENV_VAR

        monkeypatch.setenv(CACHE_ENV_VAR, str(tmp_path / "cache"))
        assert main(["regen", "--out", str(tmp_path / "r"), "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "cache:" not in out
        assert not (tmp_path / "cache").exists()
