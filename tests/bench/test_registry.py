"""Tests for the experiment registry and bulk regeneration."""

import pytest

from repro.bench import EXPERIMENTS, regenerate_all, render_experiment


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3",
            "figure1", "figure3", "figure4", "figure5", "figure6",
        }

    def test_render_unknown_id(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            render_experiment("table9")

    def test_render_table(self):
        text = render_experiment("table2")
        assert "3.91" in text

    def test_render_series_includes_plot(self):
        text = render_experiment("figure5")
        assert "p_n" in text
        assert "|" in text  # the ASCII plot frame

    def test_regenerate_all(self, tmp_path):
        written = regenerate_all(tmp_path / "out")
        assert set(written) == set(EXPERIMENTS)
        for path in written.values():
            assert path.exists()
            assert path.read_text().strip()


class TestCliRegen:
    def test_regen_command(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["regen", "--out", str(tmp_path / "r")]) == 0
        out = capsys.readouterr().out
        assert "8 artifacts regenerated" in out
        assert (tmp_path / "r" / "figure6.txt").exists()
