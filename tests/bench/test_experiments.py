"""Smoke and shape tests for the experiment regeneration functions.

The full shape assertions live in ``benchmarks/``; these tests keep the
experiment functions correct under plain ``pytest tests/`` runs (smaller
parameters for speed).
"""

import pytest

from repro.bench import (
    figure1_protocol_sketch,
    figure3_timelines,
    figure4_protocol_comparison,
    figure5_expected_time,
    figure6_stddev,
    table1_standalone,
    table2_breakdown,
    table3_vkernel,
)


class TestTables:
    def test_table1_small(self):
        table = table1_standalone(sizes=(1024, 4096))
        assert len(table.rows) == 2
        assert float(table.rows[0][1]) == pytest.approx(3.93, abs=0.01)

    def test_table2_rows(self):
        table = table2_breakdown()
        names = [row[0] for row in table.rows]
        assert names[0] == "Copy data into sender's interface"
        assert "Total" in names
        assert "Observed elapsed time" in names

    def test_table2_without_observed(self):
        table = table2_breakdown(observed=False)
        assert "Observed elapsed time" not in [row[0] for row in table.rows]

    def test_table3_small(self):
        table = table3_vkernel(sizes=(1024,))
        assert float(table.rows[0][1]) == pytest.approx(5.89, abs=0.01)


class TestFigures:
    def test_figure1_sketch(self):
        art = figure1_protocol_sketch(n_packets=2)
        assert "blast" in art and "#" in art

    def test_figure3_overlap_table(self):
        table = figure3_timelines(n_packets=2)
        rows = {row[0]: row for row in table.rows}
        assert float(rows["stop_and_wait"][2]) == 0.0

    def test_figure4_small_grid(self):
        series = figure4_protocol_comparison(n_values=(2, 4), des_check=False)
        assert set(series.series) == {"SAW", "SW", "B", "B dbuf"}
        assert series.at("SAW", 4) > series.at("B", 4)

    def test_figure4_with_des_check(self):
        series = figure4_protocol_comparison(n_values=(4,), des_check=True)
        assert series.at("B des", 4) == pytest.approx(series.at("B", 4), abs=0.01)

    def test_figure5_small_grid(self):
        series = figure5_expected_time(pn_values=(1e-5, 1e-3))
        assert series.at("blast Tr=T0(D)", 1e-5) < series.at("SAW Tr=10xT0(1)", 1e-5)

    def test_figure6_small(self):
        series = figure6_stddev(pn_values=(1e-3,), n_trials=500)
        assert series.at("full, no NAK", 1e-3) > series.at("full, NAK", 1e-3)
