"""Tests for the bench rendering helpers."""

import pytest

from repro.bench import ExperimentSeries, ExperimentTable, format_ms


class TestFormatMs:
    def test_default_precision(self):
        assert format_ms(0.14059) == "140.59"

    def test_custom_digits(self):
        assert format_ms(0.0012345, digits=3) == "1.234"


class TestExperimentTable:
    def test_add_and_render(self):
        table = ExperimentTable("Title", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(22, "yy")
        text = table.render()
        assert "Title" in text
        assert "22" in text
        assert text.splitlines()[1] == "=" * len("Title")

    def test_row_width_validated(self):
        table = ExperimentTable("T", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_access(self):
        table = ExperimentTable("T", ["a", "b"])
        table.add_row(1, "x")
        table.add_row(2, "y")
        assert table.column("a") == [1, 2]
        assert table.column("b") == ["x", "y"]
        with pytest.raises(ValueError):
            table.column("missing")

    def test_notes_rendered(self):
        table = ExperimentTable("T", ["a"], notes=["a note"])
        table.add_row(1)
        assert "note: a note" in table.render()


class TestExperimentSeries:
    def build(self):
        series = ExperimentSeries("S", "x", [1.0, 10.0, 100.0], y_label="y")
        series.add_series("up", [1.0, 2.0, 3.0])
        series.add_series("down", [3.0, 2.0, 1.0])
        return series

    def test_length_validated(self):
        series = ExperimentSeries("S", "x", [1.0, 2.0])
        with pytest.raises(ValueError):
            series.add_series("bad", [1.0])

    def test_at(self):
        series = self.build()
        assert series.at("up", 10.0) == 2.0
        with pytest.raises(ValueError):
            series.at("up", 5.0)

    def test_render_contains_all_series(self):
        text = self.build().render()
        assert "up" in text and "down" in text
        assert "100" in text

    def test_render_plot_linear(self):
        plot = self.build().render_plot(width=30, height=8)
        assert "S" in plot
        assert "* up" in plot
        assert "o down" in plot
        assert "|" in plot

    def test_render_plot_log_axes(self):
        plot = self.build().render_plot(width=30, height=8, log_x=True, log_y=True)
        assert "* up" in plot

    def test_render_plot_empty(self):
        series = ExperimentSeries("S", "x", [1.0])
        assert series.render_plot() == "(no series)"

    def test_render_plot_nonpositive_log_y(self):
        series = ExperimentSeries("S", "x", [1.0, 2.0])
        series.add_series("zeros", [0.0, 0.0])
        assert "no positive data" in series.render_plot(log_y=True)

    def test_plot_monotone_series_has_monotone_columns(self):
        """The 'up' marker should appear further right as y grows: the
        last row's marker is left of the first row's marker column."""
        series = ExperimentSeries("S", "x", list(range(1, 11)))
        series.add_series("up", [float(v) for v in range(1, 11)])
        plot = series.render_plot(width=40, height=10)
        rows = [line for line in plot.splitlines() if "|" in line]
        star_cols = [row.index("*") for row in rows if "*" in row]
        # Top row (largest y) has the right-most star.
        assert star_cols == sorted(star_cols, reverse=True)
