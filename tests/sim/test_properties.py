"""Property-based tests of the simulation kernel's global invariants."""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment, Resource, Store


class TestClockMonotonicity:
    @given(
        delays=st.lists(st.floats(min_value=0.0, max_value=1e3), max_size=40),
    )
    @settings(max_examples=100)
    def test_events_processed_in_time_order(self, delays):
        """However timeouts are created, callbacks fire in nondecreasing
        simulated-time order and the clock never runs backwards."""
        env = Environment()
        fired = []
        for delay in delays:
            env.timeout(delay).add_callback(lambda e: fired.append(env.now))
        env.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)
        if delays:
            assert env.now == max(delays)

    @given(
        spec=st.lists(
            st.tuples(st.floats(0.0, 10.0), st.integers(1, 5)),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=80)
    def test_nested_process_spawning_preserves_order(self, spec):
        """Processes spawning processes at random offsets still yield a
        globally time-ordered execution."""
        env = Environment()
        log = []

        def worker(delay, children):
            yield env.timeout(delay)
            log.append(env.now)
            for _ in range(children - 1):
                env.process(worker(delay / 2 + 0.1, 1))

        for delay, children in spec:
            env.process(worker(delay, children))
        env.run()
        assert log == sorted(log)


class TestResourceInvariants:
    @given(
        jobs=st.lists(
            st.tuples(st.floats(0.0, 5.0), st.floats(0.01, 2.0)),
            min_size=1,
            max_size=30,
        ),
        capacity=st.integers(1, 4),
    )
    @settings(max_examples=80, deadline=None)
    def test_holder_count_never_exceeds_capacity(self, jobs, capacity):
        env = Environment()
        resource = Resource(env, capacity=capacity)
        active = [0]
        peak = [0]

        def worker(start, hold):
            yield env.timeout(start)
            with resource.request() as claim:
                yield claim
                active[0] += 1
                peak[0] = max(peak[0], active[0])
                yield env.timeout(hold)
                active[0] -= 1

        for start, hold in jobs:
            env.process(worker(start, hold))
        env.run()
        assert peak[0] <= capacity
        assert active[0] == 0
        assert resource.count == 0
        assert resource.queued == 0

    @given(
        holds=st.lists(st.floats(0.01, 1.0), min_size=2, max_size=15),
    )
    @settings(max_examples=60, deadline=None)
    def test_mutex_total_time_is_sum_of_holds(self, holds):
        """A capacity-1 resource serialises perfectly: the makespan of
        simultaneous arrivals equals the sum of the hold times."""
        env = Environment()
        resource = Resource(env)

        def worker(hold):
            with resource.request() as claim:
                yield claim
                yield env.timeout(hold)

        for hold in holds:
            env.process(worker(hold))
        env.run()
        assert abs(env.now - sum(holds)) < 1e-9 * max(1.0, sum(holds))


class TestStoreInvariants:
    @given(items=st.lists(st.integers(), max_size=50))
    @settings(max_examples=80)
    def test_fifo_conservation(self, items):
        """Everything put is got, exactly once, in order."""
        env = Environment()
        store = Store(env)
        got = []

        def consumer():
            for _ in items:
                got.append((yield store.get()))

        env.process(consumer())
        for item in items:
            store.put(item)
        env.run()
        assert got == items

    @given(
        items=st.lists(st.integers(0, 9), min_size=1, max_size=40),
        capacity=st.integers(1, 5),
    )
    @settings(max_examples=60, deadline=None)
    def test_bounded_store_never_overfills(self, items, capacity):
        env = Environment()
        store = Store(env, capacity=capacity)
        peaks = []

        def producer():
            for item in items:
                yield store.put(item)
                peaks.append(len(store))

        def consumer():
            for _ in items:
                yield env.timeout(0.1)
                yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert max(peaks) <= capacity
        assert len(store) == 0


class TestHeapModel:
    @given(
        delays=st.lists(st.floats(0.0, 100.0), min_size=1, max_size=60),
    )
    @settings(max_examples=80)
    def test_matches_reference_heap_schedule(self, delays):
        """The kernel's processing order equals a reference heapsort of
        (time, insertion-index) — the canonical DES contract."""
        env = Environment()
        order = []
        for index, delay in enumerate(delays):
            env.timeout(delay, value=index).add_callback(
                lambda e: order.append(e.value)
            )
        env.run()
        reference = [i for _, i in sorted(zip(delays, range(len(delays))))]
        # Stable tie-breaking by insertion order.
        heap = [(d, i) for i, d in enumerate(delays)]
        heapq.heapify(heap)
        reference = []
        while heap:
            reference.append(heapq.heappop(heap)[1])
        assert order == reference
