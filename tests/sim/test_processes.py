"""Unit tests for generator-based processes and interrupts."""

import pytest

from repro.sim import Environment, Interrupt


@pytest.fixture()
def env():
    return Environment()


class TestProcessBasics:
    def test_process_runs_to_completion(self, env):
        log = []

        def worker():
            log.append(env.now)
            yield env.timeout(2)
            log.append(env.now)
            return "done"

        proc = env.process(worker())
        result = env.run(proc)
        assert result == "done"
        assert log == [0, 2]

    def test_process_is_alive_until_return(self, env):
        def worker():
            yield env.timeout(1)

        proc = env.process(worker())
        assert proc.is_alive
        env.run()
        assert not proc.is_alive

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)  # type: ignore[arg-type]

    def test_yield_non_event_fails_process(self, env):
        def worker():
            yield 42  # type: ignore[misc]

        proc = env.process(worker())
        with pytest.raises(TypeError):
            env.run(proc)

    def test_exception_in_process_propagates(self, env):
        def worker():
            yield env.timeout(1)
            raise RuntimeError("kaput")

        env.process(worker())
        with pytest.raises(RuntimeError, match="kaput"):
            env.run()

    def test_process_waits_on_process(self, env):
        def child():
            yield env.timeout(3)
            return 7

        def parent():
            value = yield env.process(child())
            return value * 2

        proc = env.process(parent())
        assert env.run(proc) == 14
        assert env.now == 3

    def test_two_processes_interleave(self, env):
        log = []

        def ticker(name, period):
            for _ in range(3):
                yield env.timeout(period)
                log.append((name, env.now))

        env.process(ticker("a", 1))
        env.process(ticker("b", 2))
        env.run()
        # At t=2 both fire; b's timeout was scheduled first (at t=0) so it
        # is processed first — same-time events are FIFO by schedule order.
        assert log == [
            ("a", 1), ("b", 2), ("a", 2), ("a", 3), ("b", 4), ("b", 6),
        ]

    def test_yield_already_processed_event_resumes_immediately(self, env):
        done = env.event().succeed("early")
        env.run()

        def waiter():
            value = yield done
            return (value, env.now)

        proc = env.process(waiter())
        assert env.run(proc) == ("early", 0)

    def test_active_process_tracked(self, env):
        observed = []

        def worker():
            observed.append(env.active_process)
            yield env.timeout(0)

        proc = env.process(worker())
        env.run()
        assert observed == [proc]
        assert env.active_process is None


class TestInterrupts:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as exc:
                return ("interrupted", exc.cause, env.now)
            return "finished"

        def attacker(proc):
            yield env.timeout(5)
            proc.interrupt("timeout expired")

        victim_proc = env.process(victim())
        env.process(attacker(victim_proc))
        assert env.run(victim_proc) == ("interrupted", "timeout expired", 5)

    def test_interrupt_finished_process_raises(self, env):
        def quick():
            yield env.timeout(1)

        proc = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError):
            proc.interrupt()

    def test_self_interrupt_rejected(self, env):
        def worker():
            with pytest.raises(RuntimeError):
                env.active_process.interrupt()
            yield env.timeout(0)

        proc = env.process(worker())
        env.run(proc)

    def test_uncaught_interrupt_fails_process(self, env):
        def victim():
            yield env.timeout(100)

        def attacker(proc):
            yield env.timeout(1)
            proc.interrupt("bang")

        victim_proc = env.process(victim())
        env.process(attacker(victim_proc))
        with pytest.raises(Interrupt):
            env.run()
        assert not victim_proc.ok

    def test_process_can_resume_waiting_after_interrupt(self, env):
        """The protocol engines retry their waits after a timeout interrupt."""

        def victim():
            attempts = 0
            while True:
                attempts += 1
                try:
                    yield env.timeout(10)
                    return (attempts, env.now)
                except Interrupt:
                    continue

        def attacker(proc):
            yield env.timeout(4)
            proc.interrupt()

        victim_proc = env.process(victim())
        env.process(attacker(victim_proc))
        # Interrupted at t=4, restarts its 10-unit wait, completes at t=14.
        assert env.run(victim_proc) == (2, 14)
