"""Unit tests for Store (FIFO queue) semantics."""

import pytest

from repro.sim import Environment, Store


@pytest.fixture()
def env():
    return Environment()


class TestStoreBasics:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Store(env, capacity=0)

    def test_put_then_get_fifo(self, env):
        store = Store(env)
        store.put("a")
        store.put("b")
        got = []

        def consumer():
            got.append((yield store.get()))
            got.append((yield store.get()))

        env.process(consumer())
        env.run()
        assert got == ["a", "b"]

    def test_get_blocks_until_put(self, env):
        store = Store(env)
        result = {}

        def consumer():
            result["item"] = yield store.get()
            result["time"] = env.now

        def producer():
            yield env.timeout(7)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert result == {"item": "late", "time": 7}

    def test_len_reflects_buffered_items(self, env):
        store = Store(env)
        store.put("x")
        store.put("y")
        env.run()
        assert len(store) == 2

    def test_bounded_put_blocks_when_full(self, env):
        store = Store(env, capacity=1)
        times = []

        def producer():
            yield store.put("one")
            times.append(env.now)
            yield store.put("two")
            times.append(env.now)

        def consumer():
            yield env.timeout(5)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [0, 5]

    def test_try_put_respects_capacity(self, env):
        store = Store(env, capacity=1)
        assert store.try_put("a") is True
        assert store.try_put("b") is False  # dropped, like a full NIC buffer
        env.run()
        assert list(store.items) == ["a"]

    def test_try_put_unbounded_never_drops(self, env):
        store = Store(env)
        assert all(store.try_put(i) for i in range(100))


class TestPredicateGets:
    def test_predicate_selects_matching_item(self, env):
        store = Store(env)
        for item in ["ack:1", "data:2", "ack:3"]:
            store.put(item)
        got = []

        def consumer():
            got.append((yield store.get(lambda i: i.startswith("data"))))

        env.process(consumer())
        env.run()
        assert got == ["data:2"]
        assert list(store.items) == ["ack:1", "ack:3"]

    def test_predicate_get_waits_for_match(self, env):
        store = Store(env)
        store.put("noise")
        result = {}

        def consumer():
            result["item"] = yield store.get(lambda i: i == "signal")
            result["time"] = env.now

        def producer():
            yield env.timeout(3)
            yield store.put("signal")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert result == {"item": "signal", "time": 3}

    def test_cancel_get_withdraws_claim(self, env):
        store = Store(env)
        stale = store.get()
        stale.cancel()
        fresh = store.get()
        store.put("only")
        env.run()
        assert not stale.triggered
        assert fresh.value == "only"

    def test_cancel_satisfied_get_is_noop(self, env):
        store = Store(env)
        store.put("x")
        got = store.get()
        env.run()
        got.cancel()  # already satisfied: no error
        assert got.value == "x"

    def test_two_consumers_split_items(self, env):
        store = Store(env)
        seen = []

        def consumer(name):
            item = yield store.get()
            seen.append((name, item))

        env.process(consumer("c1"))
        env.process(consumer("c2"))
        store.put("a")
        store.put("b")
        env.run()
        assert sorted(seen) == [("c1", "a"), ("c2", "b")]
