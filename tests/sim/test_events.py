"""Unit tests for the simulation kernel's event types."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Event, Timeout


@pytest.fixture()
def env():
    return Environment()


class TestEventLifecycle:
    def test_new_event_is_pending(self, env):
        event = env.event()
        assert not event.triggered
        assert not event.processed

    def test_value_before_trigger_raises(self, env):
        event = env.event()
        with pytest.raises(RuntimeError):
            _ = event.value
        with pytest.raises(RuntimeError):
            _ = event.ok

    def test_succeed_attaches_value(self, env):
        event = env.event().succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_succeed_twice_raises(self, env):
        event = env.event().succeed()
        with pytest.raises(RuntimeError):
            event.succeed()

    def test_fail_requires_exception(self, env):
        event = env.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")

    def test_fail_attaches_exception(self, env):
        exc = ValueError("boom")
        event = env.event().fail(exc)
        event.defuse()
        assert event.triggered
        assert not event.ok
        assert event.value is exc

    def test_none_is_a_valid_value(self, env):
        event = env.event().succeed(None)
        assert event.triggered
        assert event.value is None

    def test_callbacks_run_on_processing(self, env):
        event = env.event()
        seen = []
        event.add_callback(seen.append)
        event.succeed("x")
        assert seen == []  # not yet processed
        env.run()
        assert seen == [event]
        assert event.processed

    def test_callback_on_processed_event_runs_immediately(self, env):
        event = env.event().succeed("x")
        env.run()
        seen = []
        event.add_callback(seen.append)
        assert seen == [event]


class TestTimeout:
    def test_fires_at_the_right_time(self, env):
        times = []
        t = env.timeout(2.5)
        t.add_callback(lambda e: times.append(env.now))
        env.run()
        assert times == [2.5]

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_allowed(self, env):
        t = env.timeout(0, value="now")
        env.run()
        assert t.processed
        assert t.value == "now"

    def test_carries_value(self, env):
        t = env.timeout(1, value={"k": 1})
        env.run()
        assert t.value == {"k": 1}

    def test_delay_property(self, env):
        assert env.timeout(3.25).delay == 3.25

    def test_same_time_timeouts_fifo(self, env):
        order = []
        for name in "abc":
            env.timeout(1, value=name).add_callback(lambda e: order.append(e.value))
        env.run()
        assert order == ["a", "b", "c"]


class TestConditions:
    def test_any_of_fires_on_first(self, env):
        fast = env.timeout(1, value="fast")
        slow = env.timeout(5, value="slow")
        cond = env.any_of([fast, slow])
        env.run(cond)
        assert env.now == 1
        assert cond.value == {fast: "fast"}

    def test_all_of_waits_for_all(self, env):
        a = env.timeout(1, value="a")
        b = env.timeout(3, value="b")
        cond = env.all_of([a, b])
        env.run(cond)
        assert env.now == 3
        assert cond.value == {a: "a", b: "b"}

    def test_empty_condition_fires_immediately(self, env):
        cond = env.all_of([])
        assert cond.triggered
        assert cond.value == {}

    def test_condition_over_processed_events(self, env):
        a = env.timeout(1, value="a")
        env.run()
        cond = env.any_of([a])
        assert cond.triggered
        assert cond.value == {a: "a"}

    def test_condition_rejects_foreign_events(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            env.any_of([other.event()])

    def test_any_of_failure_propagates(self, env):
        bad = env.event()
        cond = env.any_of([bad, env.timeout(10)])
        bad.fail(ValueError("x"))

        def waiter():
            with pytest.raises(ValueError):
                yield cond
            return "handled"

        proc = env.process(waiter())
        env.run(proc)
        assert proc.value == "handled"

    def test_all_of_mixed_order(self, env):
        events = [env.timeout(d, value=d) for d in (3, 1, 2)]
        cond = env.all_of(events)
        env.run(cond)
        assert env.now == 3
        assert set(cond.value.values()) == {1, 2, 3}
