"""Unit tests for Resource (CPU/mutex) semantics."""

import pytest

from repro.sim import Environment, Resource


@pytest.fixture()
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_immediate_grant_when_free(self, env):
        res = Resource(env)
        req = res.request()
        assert req.triggered
        assert res.count == 1

    def test_mutex_serialises_holders(self, env):
        res = Resource(env)
        log = []

        def worker(name, hold):
            with res.request() as req:
                yield req
                log.append((name, "in", env.now))
                yield env.timeout(hold)
                log.append((name, "out", env.now))

        env.process(worker("a", 3))
        env.process(worker("b", 2))
        env.run()
        assert log == [
            ("a", "in", 0), ("a", "out", 3), ("b", "in", 3), ("b", "out", 5),
        ]

    def test_fifo_granting(self, env):
        res = Resource(env)
        order = []

        def worker(name):
            with res.request() as req:
                yield req
                order.append(name)
                yield env.timeout(1)

        for name in ["first", "second", "third"]:
            env.process(worker(name))
        env.run()
        assert order == ["first", "second", "third"]

    def test_capacity_two_allows_parallel_holders(self, env):
        res = Resource(env, capacity=2)
        active = []
        peak = []

        def worker():
            with res.request() as req:
                yield req
                active.append(1)
                peak.append(len(active))
                yield env.timeout(5)
                active.pop()

        for _ in range(4):
            env.process(worker())
        env.run()
        assert max(peak) == 2
        assert env.now == 10  # two batches of two

    def test_release_wakes_waiter(self, env):
        res = Resource(env)
        req1 = res.request()
        req2 = res.request()
        assert req1.triggered and not req2.triggered
        res.release(req1)
        assert req2.triggered

    def test_cancel_waiting_request(self, env):
        res = Resource(env)
        held = res.request()
        waiting = res.request()
        waiting.cancel()
        res.release(held)
        assert not waiting.triggered
        assert res.count == 0
        assert res.queued == 0

    def test_double_release_is_noop(self, env):
        res = Resource(env)
        req = res.request()
        res.release(req)
        res.release(req)  # no error
        assert res.count == 0

    def test_counts_reported(self, env):
        res = Resource(env, capacity=1)
        res.request()
        res.request()
        res.request()
        assert res.count == 1
        assert res.queued == 2
        assert res.capacity == 1
