"""Unit tests for the environment's run loop and scheduling discipline."""

import pytest

from repro.sim import EmptySchedule, Environment


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_respected(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_run_until_time(self):
        env = Environment()
        env.timeout(10)
        env.run(until=5.0)
        assert env.now == 5.0

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_exhausts_schedule(self):
        env = Environment()
        env.timeout(3)
        env.timeout(7)
        env.run()
        assert env.now == 7

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_peek_returns_next_event_time(self):
        env = Environment()
        env.timeout(4)
        env.timeout(2)
        assert env.peek() == 2

    def test_step_on_empty_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()


class TestRunUntilEvent:
    def test_returns_event_value(self):
        env = Environment()

        def worker():
            yield env.timeout(5)
            return "payload"

        proc = env.process(worker())
        assert env.run(proc) == "payload"
        assert env.now == 5

    def test_until_already_processed_event(self):
        env = Environment()
        t = env.timeout(1, value="v")
        env.run()
        assert env.run(t) == "v"

    def test_until_event_never_fires_raises(self):
        env = Environment()
        orphan = env.event()
        env.timeout(1)
        with pytest.raises(RuntimeError, match="exhausted"):
            env.run(orphan)

    def test_stops_before_later_events(self):
        env = Environment()
        late = env.timeout(100)
        early = env.timeout(1)
        env.run(early)
        assert env.now == 1
        assert not late.processed
        env.run()
        assert late.processed


class TestFailurePropagation:
    def test_unhandled_failed_event_raises(self):
        env = Environment()
        env.event().fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_defused_failure_is_silent(self):
        env = Environment()
        bad = env.event().fail(ValueError("defused"))
        bad.defuse()
        env.run()  # does not raise

    def test_handled_failure_in_process_is_silent(self):
        env = Environment()
        bad = env.event()

        def waiter():
            try:
                yield bad
            except ValueError:
                return "caught"

        proc = env.process(waiter())
        bad.fail(ValueError("x"))
        assert env.run(proc) == "caught"


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        def build():
            env = Environment()
            log = []

            def worker(name, delays):
                for d in delays:
                    yield env.timeout(d)
                    log.append((name, env.now))

            env.process(worker("x", [1, 2, 3]))
            env.process(worker("y", [2, 2, 2]))
            env.run()
            return log

        assert build() == build()


class TestSuccessiveTimedRuns:
    """run(until=<number>) stop events draw dedicated sentinel eids.

    A process failure escaping a timed run leaves that run's stop event
    in the heap.  The next timed run pushes a second stop at a possibly
    identical (time, priority); with the old shared ``-1`` sentinel the
    heap tie-break fell through to comparing the Event objects and blew
    up with TypeError.  Each stop now draws a fresh, increasing sentinel
    eid, so ties resolve in push order.
    """

    def test_second_timed_run_after_escaped_failure(self):
        env = Environment()

        def boom():
            yield env.timeout(0.5)
            raise RuntimeError("boom")

        env.process(boom())
        with pytest.raises(RuntimeError, match="boom"):
            env.run(until=1.0)
        env.timeout(0.2)
        env.run(until=1.0)  # same stop time: must not TypeError
        assert env.now == 1.0

    def test_successive_timed_runs_advance_the_clock(self):
        env = Environment()
        ticks = []

        def ticker():
            while True:
                yield env.timeout(0.25)
                ticks.append(env.now)

        env.process(ticker())
        env.run(until=1.0)
        assert env.now == 1.0
        env.run(until=2.0)
        assert env.now == 2.0
        # The stop at t=1.0 is urgent, so it fires before the tick due
        # at the same instant; that tick lands in the second run.
        assert ticks == [0.25 * i for i in range(1, 8)]

    def test_stop_events_sort_ahead_of_real_events(self):
        # Sentinel eids start far below any real eid: a stop pushed
        # *after* billions of events still wins a same-time tie.
        env = Environment()
        seen = []
        env.timeout(1.0).add_callback(lambda event: seen.append("tick"))
        env.run(until=1.0)
        assert env.now == 1.0
        assert seen == []  # the stop fired first; the tick is still queued
        env.run()
        assert seen == ["tick"]

    def test_timed_run_in_the_past_is_rejected(self):
        env = Environment()
        env.timeout(1.0)
        env.run(until=1.0)
        with pytest.raises(ValueError, match="in the past"):
            env.run(until=0.5)
