"""Unit tests for the environment's run loop and scheduling discipline."""

import pytest

from repro.sim import EmptySchedule, Environment


class TestClock:
    def test_starts_at_zero(self):
        assert Environment().now == 0.0

    def test_initial_time_respected(self):
        assert Environment(initial_time=100.0).now == 100.0

    def test_run_until_time(self):
        env = Environment()
        env.timeout(10)
        env.run(until=5.0)
        assert env.now == 5.0

    def test_run_until_past_time_rejected(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_run_exhausts_schedule(self):
        env = Environment()
        env.timeout(3)
        env.timeout(7)
        env.run()
        assert env.now == 7

    def test_peek_empty_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_peek_returns_next_event_time(self):
        env = Environment()
        env.timeout(4)
        env.timeout(2)
        assert env.peek() == 2

    def test_step_on_empty_raises(self):
        with pytest.raises(EmptySchedule):
            Environment().step()


class TestRunUntilEvent:
    def test_returns_event_value(self):
        env = Environment()

        def worker():
            yield env.timeout(5)
            return "payload"

        proc = env.process(worker())
        assert env.run(proc) == "payload"
        assert env.now == 5

    def test_until_already_processed_event(self):
        env = Environment()
        t = env.timeout(1, value="v")
        env.run()
        assert env.run(t) == "v"

    def test_until_event_never_fires_raises(self):
        env = Environment()
        orphan = env.event()
        env.timeout(1)
        with pytest.raises(RuntimeError, match="exhausted"):
            env.run(orphan)

    def test_stops_before_later_events(self):
        env = Environment()
        late = env.timeout(100)
        early = env.timeout(1)
        env.run(early)
        assert env.now == 1
        assert not late.processed
        env.run()
        assert late.processed


class TestFailurePropagation:
    def test_unhandled_failed_event_raises(self):
        env = Environment()
        env.event().fail(ValueError("unhandled"))
        with pytest.raises(ValueError, match="unhandled"):
            env.run()

    def test_defused_failure_is_silent(self):
        env = Environment()
        bad = env.event().fail(ValueError("defused"))
        bad.defuse()
        env.run()  # does not raise

    def test_handled_failure_in_process_is_silent(self):
        env = Environment()
        bad = env.event()

        def waiter():
            try:
                yield bad
            except ValueError:
                return "caught"

        proc = env.process(waiter())
        bad.fail(ValueError("x"))
        assert env.run(proc) == "caught"


class TestDeterminism:
    def test_identical_runs_produce_identical_timelines(self):
        def build():
            env = Environment()
            log = []

            def worker(name, delays):
                for d in delays:
                    yield env.timeout(d)
                    log.append((name, env.now))

            env.process(worker("x", [1, 2, 3]))
            env.process(worker("y", [2, 2, 2]))
            env.run()
            return log

        assert build() == build()
